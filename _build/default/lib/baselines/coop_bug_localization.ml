(* Cooperative bug localization in the style of Snorlax (SOSP'17) and
   Gist (SOSP'15): a fixed set of single-variable interleaving patterns
   is matched against failing and passing runs, and the pattern with the
   strongest statistical correlation to failure is reported.

   The predefined patterns (and nothing else — that is the point of the
   §5.3 comparison) are:

   - order violation: accesses a (thread t) and b (thread t') to one
     location executed a => b in failing runs and b => a (or a alone) in
     passing runs;
   - single-variable atomicity violation: a thread's consecutive pair of
     accesses to one location interleaved by a remote write in failing
     runs but not in passing runs. *)

module Iid = Ksim.Access.Iid

type pattern =
  | Order_violation of { first : Iid.t; second : Iid.t; addr : Ksim.Addr.t }
  | Atomicity_violation of {
      local_a : Iid.t;
      local_b : Iid.t;          (* same-thread pair *)
      remote : Iid.t;           (* interleaving write *)
      addr : Ksim.Addr.t;
    }

let pattern_addr = function
  | Order_violation { addr; _ } | Atomicity_violation { addr; _ } -> addr

let pp_pattern ppf = function
  | Order_violation { first; second; addr } ->
    Fmt.pf ppf "order violation %a => %a on %a" Iid.pp_full first Iid.pp_full
      second Ksim.Addr.pp addr
  | Atomicity_violation { local_a; local_b; remote; addr } ->
    Fmt.pf ppf "atomicity violation (%a..%a) <- %a on %a" Iid.pp_full local_a
      Iid.pp_full local_b Iid.pp_full remote Ksim.Addr.pp addr

type scored = { pattern : pattern; score : float; fail_hits : int;
                pass_hits : int }

type result = {
  ranked : scored list;        (* best first *)
  runs_analyzed : int;
}

let accesses (o : Hypervisor.Controller.outcome) =
  List.filter_map (fun (e : Ksim.Machine.event) -> e.access) o.trace

(* Enumerate pattern instances present in one run.  Location sequences
   are overlap-aware (a kfree of an object joins the sequences of its
   fields), matching the conflict notion used elsewhere. *)
let patterns_of (o : Hypervisor.Controller.outcome) : pattern list =
  let acc = accesses o in
  List.fold_left
    (fun out (_, seq) ->
      let rec scan out = function
        | [] -> out
        | (a : Ksim.Access.t) :: rest ->
          let out =
            List.fold_left
              (fun out (b : Ksim.Access.t) ->
                if
                  b.iid.Iid.tid <> a.iid.Iid.tid
                  && (Ksim.Access.is_write a || Ksim.Access.is_write b)
                then
                  Order_violation
                    { first = a.iid; second = b.iid; addr = a.addr }
                  :: out
                else out)
              out rest
          in
          (* atomicity: a and the next same-thread access with a remote
             write in between *)
          let rec find_local between = function
            | [] -> out
            | (c : Ksim.Access.t) :: more ->
              if c.iid.Iid.tid = a.iid.Iid.tid then (
                match
                  List.find_opt
                    (fun (w : Ksim.Access.t) -> Ksim.Access.is_write w)
                    (List.rev between)
                with
                | Some w ->
                  Atomicity_violation
                    { local_a = a.iid; local_b = c.iid; remote = w.iid;
                      addr = a.addr }
                  :: out
                | None -> out)
              else
                find_local
                  (if c.iid.Iid.tid <> a.iid.Iid.tid then c :: between
                   else between)
                  more
          in
          let out = find_local [] rest in
          scan out rest
      in
      scan out seq)
    []
    (Aitia.Race.location_sequences acc)

let pattern_key p = Fmt.str "%a" pp_pattern p

(* Rank patterns by correlation: present in failing runs, absent from
   passing runs. *)
let analyze ~(failing : Hypervisor.Controller.outcome list)
    ~(passing : Hypervisor.Controller.outcome list) : result =
  let table : (string, pattern * int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let record which o =
    List.iter
      (fun p ->
        let k = pattern_key p in
        let _, f, s =
          match Hashtbl.find_opt table k with
          | Some e -> e
          | None ->
            let e = (p, ref 0, ref 0) in
            Hashtbl.add table k e;
            e
        in
        match which with `Fail -> incr f | `Pass -> incr s)
      (List.sort_uniq compare (patterns_of o))
  in
  List.iter (record `Fail) failing;
  List.iter (record `Pass) passing;
  let nf = float_of_int (max 1 (List.length failing)) in
  let np = float_of_int (max 1 (List.length passing)) in
  (* Snorlax-style proximity tie-break: among equally correlated
     patterns, the one whose later endpoint sits closest to the failure
     point of the failed run ranks first. *)
  let position =
    let tbl = Hashtbl.create 128 in
    (match failing with
    | (o : Hypervisor.Controller.outcome) :: _ ->
      List.iteri
        (fun i (e : Ksim.Machine.event) ->
          Hashtbl.replace tbl (Fmt.str "%a" Iid.pp_full e.iid) i)
        o.trace
    | [] -> ());
    fun iid ->
      Option.value ~default:(-1)
        (Hashtbl.find_opt tbl (Fmt.str "%a" Iid.pp_full iid))
  in
  let last_pos = function
    | Order_violation { second; _ } -> position second
    | Atomicity_violation { local_b; _ } -> position local_b
  in
  let ranked =
    Hashtbl.fold
      (fun _ (p, f, s) out ->
        let score = (float_of_int !f /. nf) -. (float_of_int !s /. np) in
        { pattern = p; score; fail_hits = !f; pass_hits = !s } :: out)
      table []
    |> List.sort (fun a b ->
           let c = Float.compare b.score a.score in
           if c <> 0 then c
           else Int.compare (last_pos b.pattern) (last_pos a.pattern))
  in
  { ranked; runs_analyzed = List.length failing + List.length passing }

let top r = List.nth_opt r.ranked 0

(* The §5.3 capability check: cooperative bug localization diagnoses a
   failure only when the bug fits its single-variable pattern set AND
   the top-ranked pattern actually points into the ground-truth chain.
   For multi-variable bugs a single pattern is necessarily partial —
   the paper's "cannot diagnose the half of bugs". *)
let covers_chain ~single_variable (r : result) (chain : Aitia.Chain.t) =
  single_variable
  &&
  match top r with
  | None -> false
  | Some { pattern; _ } ->
    List.exists
      (fun (race : Aitia.Race.t) ->
        Ksim.Addr.overlaps race.first.addr (pattern_addr pattern)
        || Ksim.Addr.overlaps race.second.addr (pattern_addr pattern))
      (Aitia.Chain.races chain)
