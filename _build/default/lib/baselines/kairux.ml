(* Kairux-style inflection-point analysis (Zhang et al., SOSP'19),
   simplified to our substrate.

   The inflection point hypothesis: the root cause of a failure is the
   first event of the failed run that deviates from the non-failed run
   sharing the longest common prefix.  The output is a single
   instruction, which is the crux of the comparison in §5.3: for kernel
   concurrency failures whose root cause is a chain of several data
   races, one instruction cannot carry the full explanation
   (comprehensiveness), even though the approach is pattern-agnostic and
   concise. *)

module Iid = Ksim.Access.Iid

type result = {
  inflection : Iid.t option;     (* None if no passing run to compare *)
  lcp_length : int;              (* events shared with the closest pass *)
  compared_runs : int;
}

let iids_of (o : Hypervisor.Controller.outcome) =
  List.map (fun (e : Ksim.Machine.event) -> e.iid) o.trace

let common_prefix_length a b =
  let rec go n = function
    | x :: xs, y :: ys when Iid.equal x y -> go (n + 1) (xs, ys)
    | _ -> n
  in
  go 0 (a, b)

(* Locate the inflection point of [failing] against the non-failing
   [passing] runs. *)
let analyze ~(failing : Hypervisor.Controller.outcome)
    ~(passing : Hypervisor.Controller.outcome list) : result =
  let f = iids_of failing in
  let best =
    List.fold_left
      (fun acc p ->
        let n = common_prefix_length f (iids_of p) in
        max acc n)
      0 passing
  in
  let inflection = List.nth_opt f best in
  { inflection; lcp_length = best; compared_runs = List.length passing }

(* Does a single-instruction answer cover the ground-truth causality
   chain?  Only when the chain is a single race whose second endpoint is
   the inflection point's neighbourhood; for multi-race chains the
   answer is necessarily partial. *)
let covers_chain (r : result) (chain : Aitia.Chain.t) =
  match Aitia.Chain.races chain, r.inflection with
  | [ race ], Some ip ->
    Iid.equal ip race.Aitia.Race.first.iid
    || Iid.equal ip race.Aitia.Race.second.iid
  | _, _ -> false

let pp ppf r =
  match r.inflection with
  | None -> Fmt.string ppf "no inflection point (no passing run)"
  | Some ip ->
    Fmt.pf ppf "inflection point %a (lcp %d over %d runs)" Iid.pp_full ip
      r.lcp_length r.compared_runs
