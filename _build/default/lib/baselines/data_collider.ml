(* A DataCollider-style sampling race detector (Erickson et al.,
   OSDI'10), the detector §2.3 quotes: "104 data races out of 113
   detected races were benign".

   The original samples a memory-accessing instruction, traps the thread
   just before it, plants a hardware watchpoint on the address, stalls
   for a delay window while other threads run, and reports a race if
   anything else touches the location.  We reproduce the mechanics with
   a policy that suspends the sampled thread at the sampled instruction
   for a window of steps — demonstrating why raw detection output
   drowns developers in benign races, which is what Causality Analysis
   is for. *)

module Iid = Ksim.Access.Iid

type report = {
  sampled : Ksim.Access.t;    (* the trapped access *)
  racing : Ksim.Access.t;     (* the conflicting access in the window *)
}

type result = {
  races : report list;        (* deduplicated by static pair *)
  rounds : int;
  traps_placed : int;
}

let race_key (r : report) =
  Fmt.str "%s/%s-%s/%s"
    (Fmt.str "%d" r.sampled.iid.Iid.tid)
    r.sampled.iid.Iid.label
    (Fmt.str "%d" r.racing.iid.Iid.tid)
    r.racing.iid.Iid.label

(* One detection round: run under a round-robin-ish policy; when
   [victim]'s next instruction is the sampled (label, occ), stall it for
   [window] steps while the other threads run, watching the location. *)
let round ~group ~prologue ~(rng : Fuzz.Rng.t) ~window
    ~(sample : Iid.t * Ksim.Addr.t) : report option =
  let target_iid, watched = sample in
  let stalling = ref false in
  let stall_left = ref 0 in
  let hit : report option ref = ref None in
  let sampled_access = ref None in
  let policy m runnable =
    let victim = target_iid.Iid.tid in
    let at_trap =
      Ksim.Machine.has_thread m victim
      && (not (Ksim.Machine.is_done m victim))
      && (match Ksim.Machine.next_label m victim with
         | Some l ->
           String.equal l target_iid.Iid.label
           && Ksim.Machine.occurrences m victim l + 1 = target_iid.Iid.occ
         | None -> false)
    in
    if at_trap && not !stalling then (
      stalling := true;
      stall_left := window);
    if !stalling && !stall_left > 0 then (
      decr stall_left;
      (* the victim is parked on the trap; run anyone else *)
      match List.filter (fun t -> t <> victim) runnable with
      | [] ->
        stalling := false;
        (match runnable with [] -> None | t :: _ -> Some t)
      | others -> Some (Fuzz.Rng.pick rng others))
    else
      match runnable with
      | [] -> None
      | xs -> Some (Fuzz.Rng.pick rng xs)
  in
  let policy = Fuzz.Fuzzer.with_prologue prologue policy in
  let o = Hypervisor.Controller.run (Ksim.Machine.create group) policy in
  (* Scan the trace: the first access to the watched location by another
     thread while the victim was parked before its sampled access. *)
  let victim_done = ref false in
  let colliding : Ksim.Access.t option ref = ref None in
  List.iter
    (fun (e : Ksim.Machine.event) ->
      if Iid.equal e.iid target_iid then (
        victim_done := true;
        sampled_access := e.access);
      match e.access with
      | Some a
        when (not !victim_done)
             && e.iid.Iid.tid <> target_iid.Iid.tid
             && Ksim.Addr.overlaps a.addr watched
             && !colliding = None ->
        colliding := Some a
      | _ -> ())
    o.trace;
  (match !colliding, !sampled_access with
  | Some racing, Some sampled -> hit := Some { sampled; racing }
  | _, _ -> ());
  match !hit with
  | Some { sampled; racing }
    when Ksim.Access.is_write racing || Ksim.Access.is_write sampled ->
    Some { sampled; racing }
  | Some _ | None -> None

(* Sample [rounds] random accesses from a profiling run and trap each. *)
let detect ?(rounds = 64) ?(window = 200) ?(seed = 99) ~prologue group :
    result =
  let rng = Fuzz.Rng.create seed in
  (* Profile with a random schedule to learn the access population. *)
  let profile =
    let policy =
      Fuzz.Fuzzer.with_prologue prologue
        (Fuzz.Fuzzer.random_policy (Fuzz.Rng.split rng))
    in
    Hypervisor.Controller.run (Ksim.Machine.create group) policy
  in
  let population =
    List.filter_map
      (fun (e : Ksim.Machine.event) ->
        match e.access with
        | Some a when not (List.mem e.iid.Iid.tid prologue) ->
          Some (e.iid, a.addr)
        | _ -> None)
      profile.trace
  in
  if population = [] then { races = []; rounds; traps_placed = 0 }
  else (
    let seen = Hashtbl.create 32 in
    let races = ref [] in
    let traps = ref 0 in
    for _ = 1 to rounds do
      let sample = Fuzz.Rng.pick rng population in
      incr traps;
      match
        round ~group ~prologue ~rng:(Fuzz.Rng.split rng) ~window ~sample
      with
      | Some r ->
        let k = race_key r in
        if not (Hashtbl.mem seen k) then (
          Hashtbl.add seen k ();
          races := r :: !races)
      | None -> ()
    done;
    { races = List.rev !races; rounds; traps_placed = !traps })

(* How many detected races does the ground-truth chain actually need?
   Everything else is the benign burden the paper's §2.3 describes. *)
let benign_fraction (r : result) (chain : Aitia.Chain.t) =
  let chain_pairs =
    List.concat_map
      (fun (race : Aitia.Race.t) ->
        [ (race.first.iid.Iid.label, race.second.iid.Iid.label);
          (race.second.iid.Iid.label, race.first.iid.Iid.label) ])
      (Aitia.Chain.races chain)
  in
  let harmful =
    List.filter
      (fun rep ->
        List.mem
          (rep.sampled.iid.Iid.label, rep.racing.iid.Iid.label)
          chain_pairs)
      r.races
  in
  let total = List.length r.races in
  if total = 0 then 0.0
  else float_of_int (total - List.length harmful) /. float_of_int total

let pp ppf r =
  Fmt.pf ppf "%d race(s) from %d traps" (List.length r.races) r.traps_placed
