(* MUVI-style access-correlation inference (Lu et al., SOSP'07).

   MUVI assumes that semantically correlated variables are accessed
   together: if one is accessed, the other follows within a short window
   with high probability.  It infers correlated pairs from many runs and
   flags multi-variable bugs whose unsynchronized accesses split an
   inferred pair.

   The §5.3 comparison hinges on the assumption's failure modes:
   - single-variable failures have no pair to infer;
   - loosely correlated objects (§2.2) are accessed together too rarely
     (their accesses sit far apart, in different subsystems), so the
     confidence never reaches the threshold. *)

module Iid = Ksim.Access.Iid

type pair = { var_a : Ksim.Addr.t; var_b : Ksim.Addr.t; confidence : float }

type result = {
  correlated : pair list;
  vars_seen : int;
}

let default_window = 10
let default_confidence = 0.6

(* Canonical variable identity: field name for heap fields (object ids
   differ across runs), global name otherwise. *)
let var_of (a : Ksim.Addr.t) =
  match a with
  | Ksim.Addr.Global gname -> "g:" ^ gname
  | Ksim.Addr.Field (_, f) -> "f:" ^ f
  | Ksim.Addr.Index (_, _) -> "slots"
  | Ksim.Addr.Whole _ -> "obj"

(* Infer correlated variable pairs from traces.  MUVI reasons about
   static code: the unit of evidence is an instruction site (thread base
   + label), not a dynamic access — a site "accesses x together with y"
   if in some execution an access to y by the same thread appears within
   [window] events of it.  confidence(x -> y) is the fraction of x's
   sites with a nearby y; a pair is correlated when both directions pass
   the threshold. *)
let analyze ?(window = default_window) ?(confidence = default_confidence)
    (runs : Hypervisor.Controller.outcome list) : result =
  let site (e : Ksim.Machine.event) = (e.thread_name, e.iid.Iid.label) in
  (* var -> set of sites accessing it *)
  let sites_of : (string, ((string * string), unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  (* (var x, site accessing x) -> set of vars seen nearby *)
  let near : (string * (string * string) * string, unit) Hashtbl.t =
    Hashtbl.create 256
  in
  let addr_sample : (string, Ksim.Addr.t) Hashtbl.t = Hashtbl.create 32 in
  let add_site x s =
    let tbl =
      match Hashtbl.find_opt sites_of x with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add sites_of x t;
        t
    in
    Hashtbl.replace tbl s ()
  in
  List.iter
    (fun (o : Hypervisor.Controller.outcome) ->
      let events = Array.of_list o.trace in
      let n = Array.length events in
      for i = 0 to n - 1 do
        match events.(i).Ksim.Machine.access with
        | None -> ()
        | Some a ->
          let x = var_of a.addr in
          Hashtbl.replace addr_sample x a.addr;
          let s = site events.(i) in
          add_site x s;
          for j = max 0 (i - window) to min (n - 1) (i + window) do
            if j <> i then
              match events.(j).Ksim.Machine.access with
              | Some b
                when b.iid.Iid.tid = a.iid.Iid.tid
                     && not (Ksim.Addr.equal b.addr a.addr) ->
                Hashtbl.replace near (x, s, var_of b.addr) ()
              | Some _ | None -> ()
          done
      done)
    runs;
  let site_confidence x y =
    match Hashtbl.find_opt sites_of x with
    | None -> 0.0
    | Some sites ->
      let total = Hashtbl.length sites in
      let hits =
        Hashtbl.fold
          (fun s () acc ->
            if Hashtbl.mem near (x, s, y) then acc + 1 else acc)
          sites 0
      in
      float_of_int hits /. float_of_int (max 1 total)
  in
  let vars = Hashtbl.fold (fun v _ acc -> v :: acc) sites_of [] in
  let correlated =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if x < y then (
              let conf = Float.min (site_confidence x y) (site_confidence y x) in
              if conf >= confidence then
                Some
                  { var_a = Hashtbl.find addr_sample x;
                    var_b = Hashtbl.find addr_sample y;
                    confidence = conf }
              else None)
            else None)
          vars)
      vars
  in
  { correlated; vars_seen = List.length vars }

let inferred r x y =
  let vx = var_of x and vy = var_of y in
  List.exists
    (fun p ->
      let pa = var_of p.var_a and pb = var_of p.var_b in
      (String.equal pa vx && String.equal pb vy)
      || (String.equal pa vy && String.equal pb vx))
    r.correlated

(* MUVI explains a failure only if the chain spans >= 2 variables and
   every pair of chain variables is inferred correlated.  Whole-object
   accesses (kfree) are not variables and are ignored. *)
let covers_chain (r : result) (chain : Aitia.Chain.t) =
  let addrs =
    List.filter_map
      (fun (race : Aitia.Race.t) ->
        match race.first.addr with
        | (Ksim.Addr.Global _ | Ksim.Addr.Field _) as a -> Some a
        | Ksim.Addr.Index _ | Ksim.Addr.Whole _ -> None)
      (Aitia.Chain.races chain)
    |> List.sort_uniq Ksim.Addr.compare
  in
  match addrs with
  | [] | [ _ ] -> false  (* single-variable: outside MUVI's assumption *)
  | addrs ->
    List.for_all
      (fun x ->
        List.for_all
          (fun y -> Ksim.Addr.equal x y || inferred r x y)
          addrs)
      addrs

let pp ppf r =
  Fmt.pf ppf "%d correlated pair(s) over %d vars:@ %a"
    (List.length r.correlated) r.vars_seen
    (Fmt.list ~sep:Fmt.semi (fun ppf p ->
         Fmt.pf ppf "(%a, %a)@%.2f" Ksim.Addr.pp p.var_a Ksim.Addr.pp p.var_b
           p.confidence))
    r.correlated
