(** Kairux-style inflection-point analysis (Zhang et al., SOSP'19): the
    root cause as the first event of the failed run deviating from the
    non-failed run sharing the longest common prefix — a single
    instruction, which is the crux of the §5.3 comparison. *)

module Iid = Ksim.Access.Iid

type result = {
  inflection : Iid.t option;
  lcp_length : int;
  compared_runs : int;
}

val common_prefix_length : Iid.t list -> Iid.t list -> int

val analyze :
  failing:Hypervisor.Controller.outcome ->
  passing:Hypervisor.Controller.outcome list ->
  result

val covers_chain : result -> Aitia.Chain.t -> bool
(** A single instruction covers the ground truth only for one-race
    chains whose endpoint it hits. *)

val pp : result Fmt.t
