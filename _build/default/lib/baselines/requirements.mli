(** Scoring the three requirements of §2 — comprehensive,
    pattern-agnostic, concise — for AITIA and the implemented
    comparators (Table 1 and the §5.3 capability comparison). *)

type verdict = Satisfied | Conditional | Unsatisfied

val pp_verdict : verdict Fmt.t
val glyph : verdict -> string

type score = {
  tool : string;
  comprehensive : verdict;
  pattern_agnostic : verdict;
  concise : verdict;
}

type evidence = {
  report : Aitia.Diagnose.report;
  failing : Hypervisor.Controller.outcome;
  passing : Hypervisor.Controller.outcome list;
}

val chain_of : evidence -> Aitia.Chain.t

val evidence_of_report : Aitia.Diagnose.report -> evidence option
(** The baselines get the same failing execution and the passing runs
    LIFS explored. *)

val production_runs :
  ?count:int -> Ksim.Program.group -> Hypervisor.Controller.outcome list
(** Extra passing runs under a random scheduler — the production
    population cooperative bug localization draws statistics from.
    Threads named ["init"] are treated as the setup prologue. *)

type capability = {
  cap_aitia : bool;
  cap_kairux : bool;
  cap_cbl : bool;
  cap_muvi : bool;
}

val capability : single_variable:bool -> evidence -> capability
(** Did each tool fully explain this bug? *)

val table1 : capability list -> score list
val pp_score : score Fmt.t
