(** MUVI-style access-correlation inference (Lu et al., SOSP'07): if two
    variables are semantically correlated, accesses to one are followed
    by accesses to the other within a short window, at most sites.  The
    assumption fails for single-variable bugs and for loosely correlated
    objects (§2.2) — the boundary the §5.3 comparison measures. *)

type pair = {
  var_a : Ksim.Addr.t;
  var_b : Ksim.Addr.t;
  confidence : float;
}

type result = {
  correlated : pair list;
  vars_seen : int;
}

val default_window : int
val default_confidence : float

val var_of : Ksim.Addr.t -> string
(** Canonical variable identity (field names, not object ids). *)

val analyze :
  ?window:int -> ?confidence:float ->
  Hypervisor.Controller.outcome list -> result
(** Site-based inference: the unit of evidence is a static instruction
    site, as in MUVI's static analysis. *)

val inferred : result -> Ksim.Addr.t -> Ksim.Addr.t -> bool

val covers_chain : result -> Aitia.Chain.t -> bool
(** Requires >= 2 chain variables, all pairwise inferred correlated. *)

val pp : result Fmt.t
