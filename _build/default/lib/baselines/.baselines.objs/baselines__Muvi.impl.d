lib/baselines/muvi.ml: Aitia Array Float Fmt Hashtbl Hypervisor Ksim List String
