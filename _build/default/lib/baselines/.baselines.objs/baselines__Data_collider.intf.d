lib/baselines/data_collider.mli: Aitia Fmt Ksim
