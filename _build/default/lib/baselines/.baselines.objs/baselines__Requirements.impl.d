lib/baselines/requirements.ml: Aitia Coop_bug_localization Fmt Fuzz Hypervisor Kairux Ksim List Muvi String
