lib/baselines/requirements.mli: Aitia Fmt Hypervisor Ksim
