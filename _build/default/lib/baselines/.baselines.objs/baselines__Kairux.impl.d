lib/baselines/kairux.ml: Aitia Fmt Hypervisor Ksim List
