lib/baselines/kairux.mli: Aitia Fmt Hypervisor Ksim
