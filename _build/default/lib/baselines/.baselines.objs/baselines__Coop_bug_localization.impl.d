lib/baselines/coop_bug_localization.ml: Aitia Float Fmt Hashtbl Hypervisor Int Ksim List Option
