lib/baselines/muvi.mli: Aitia Fmt Hypervisor Ksim
