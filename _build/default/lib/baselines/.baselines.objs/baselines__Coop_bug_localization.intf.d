lib/baselines/coop_bug_localization.mli: Aitia Fmt Hypervisor Ksim
