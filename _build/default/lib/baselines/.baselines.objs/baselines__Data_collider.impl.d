lib/baselines/data_collider.ml: Aitia Fmt Fuzz Hashtbl Hypervisor Ksim List String
