(** Cooperative bug localization in the style of Snorlax (SOSP'17) and
    Gist (SOSP'15): a fixed set of single-variable interleaving patterns
    ranked by statistical correlation to failure, with a proximity
    tie-break toward the failure point. *)

module Iid = Ksim.Access.Iid

type pattern =
  | Order_violation of { first : Iid.t; second : Iid.t; addr : Ksim.Addr.t }
  | Atomicity_violation of {
      local_a : Iid.t;
      local_b : Iid.t;
      remote : Iid.t;
      addr : Ksim.Addr.t;
    }

val pattern_addr : pattern -> Ksim.Addr.t
val pp_pattern : pattern Fmt.t

type scored = {
  pattern : pattern;
  score : float;
  fail_hits : int;
  pass_hits : int;
}

type result = {
  ranked : scored list;  (** best first *)
  runs_analyzed : int;
}

val patterns_of : Hypervisor.Controller.outcome -> pattern list
val pattern_key : pattern -> string

val analyze :
  failing:Hypervisor.Controller.outcome list ->
  passing:Hypervisor.Controller.outcome list ->
  result

val top : result -> scored option

val covers_chain :
  single_variable:bool -> result -> Aitia.Chain.t -> bool
(** Diagnosed only when the bug fits the single-variable pattern set and
    the top pattern points into the chain — multi-variable bugs are the
    half these techniques cannot diagnose (§5.3). *)
