(* Scoring the three root-cause-diagnosis requirements of §2 for AITIA
   and the implemented comparators, over a diagnosed bug (Table 1 and
   the §5.3 capability comparison).

   - Comprehensive: the tool's output carries every data race a fix must
     regulate (the ground-truth causality chain).
   - Pattern-agnostic: the tool reaches a verdict without the bug having
     to fit a predefined pattern or assumption.
   - Concise: the output contains no failure-irrelevant information
     (benign races). *)

type verdict = Satisfied | Conditional | Unsatisfied

let pp_verdict ppf = function
  | Satisfied -> Fmt.string ppf "yes"
  | Conditional -> Fmt.string ppf "cond"
  | Unsatisfied -> Fmt.string ppf "no"

let glyph = function
  | Satisfied -> "v"
  | Conditional -> "^"
  | Unsatisfied -> "-"

type score = {
  tool : string;
  comprehensive : verdict;
  pattern_agnostic : verdict;
  concise : verdict;
}

type evidence = {
  (* Ground truth from AITIA's diagnosis of one bug. *)
  report : Aitia.Diagnose.report;
  failing : Hypervisor.Controller.outcome;
  passing : Hypervisor.Controller.outcome list;
}

let chain_of e =
  match e.report.chain with
  | Some c -> c
  | None -> invalid_arg "Requirements: bug was not diagnosed"

(* Build the evidence from a completed AITIA diagnosis: the baselines
   get the same failing execution and the passing runs LIFS explored. *)
let evidence_of_report (report : Aitia.Diagnose.report) : evidence option =
  match report.lifs.found with
  | None -> None
  | Some success ->
    let passing =
      List.filter_map
        (fun (_, (o : Hypervisor.Controller.outcome)) ->
          match o.verdict with
          | Hypervisor.Controller.Completed -> Some o
          | _ -> None)
        report.lifs.runs
    in
    Some { report; failing = success.outcome; passing }

(* Per-bug capability of each tool: did it fully explain this bug? *)
type capability = {
  cap_aitia : bool;
  cap_kairux : bool;
  cap_cbl : bool;
  cap_muvi : bool;
}

(* Extra production-style passing runs: cooperative bug localization
   draws its statistics from many executions, not just the handful LIFS
   needed.  Threads named "init" are the resource-setup prologue by
   corpus convention. *)
let production_runs ?(count = 40) (group : Ksim.Program.group) :
    Hypervisor.Controller.outcome list =
  let prologue =
    List.filteri
      (fun i (s : Ksim.Program.thread_spec) ->
        ignore i;
        String.equal s.spec_name "init")
      group.Ksim.Program.threads
    |> List.map (fun (s : Ksim.Program.thread_spec) ->
           let rec index i = function
             | [] -> -1
             | (x : Ksim.Program.thread_spec) :: rest ->
               if String.equal x.spec_name s.spec_name then i
               else index (i + 1) rest
           in
           index 0 group.Ksim.Program.threads)
  in
  let rng = Fuzz.Rng.create 4242 in
  List.init count (fun _ ->
      let m = Ksim.Machine.create group in
      let policy =
        Fuzz.Fuzzer.with_prologue prologue
          (Fuzz.Fuzzer.random_policy (Fuzz.Rng.split rng))
      in
      Hypervisor.Controller.run m policy)
  |> List.filter (fun (o : Hypervisor.Controller.outcome) ->
         o.verdict = Hypervisor.Controller.Completed)

let capability ~(single_variable : bool) (e : evidence) : capability =
  let chain = chain_of e in
  let extra = production_runs e.report.case.group in
  let passing = e.passing @ extra in
  let kairux = Kairux.analyze ~failing:e.failing ~passing in
  let cbl = Coop_bug_localization.analyze ~failing:[ e.failing ] ~passing in
  let muvi = Muvi.analyze (e.failing :: passing) in
  { cap_aitia = true;
    cap_kairux = Kairux.covers_chain kairux chain;
    cap_cbl = Coop_bug_localization.covers_chain ~single_variable cbl chain;
    cap_muvi = Muvi.covers_chain muvi chain }

(* Aggregate Table 1 over a set of diagnosed bugs. *)
let table1 (caps : capability list) : score list =
  let frac f =
    let hits = List.length (List.filter f caps) in
    float_of_int hits /. float_of_int (max 1 (List.length caps))
  in
  let band x =
    if x >= 0.99 then Satisfied
    else if x > 0.0 then Conditional
    else Unsatisfied
  in
  [ { tool = "AITIA";
      comprehensive = band (frac (fun c -> c.cap_aitia));
      pattern_agnostic = band (frac (fun c -> c.cap_aitia));
      (* Conciseness measured separately: chains carry no benign races. *)
      concise = Satisfied };
    { tool = "Kairux";
      (* A single inflection point: comprehensive only for 1-race chains. *)
      comprehensive = band (frac (fun c -> c.cap_kairux));
      pattern_agnostic = Satisfied;
      concise = Satisfied };
    { tool = "CBL (Snorlax/Gist/CCI)";
      comprehensive = band (frac (fun c -> c.cap_cbl));
      pattern_agnostic = Unsatisfied;
      concise = Satisfied };
    { tool = "MUVI";
      comprehensive = band (frac (fun c -> c.cap_muvi));
      pattern_agnostic = Unsatisfied;
      concise = Satisfied };
    { tool = "Failure reproduction (REPT/RR)";
      (* Replaying the failed execution shows everything that happened —
         comprehensive and assumption-free but buried in benign races. *)
      comprehensive = Satisfied;
      pattern_agnostic = Satisfied;
      concise = Unsatisfied } ]

let pp_score ppf s =
  let v x = Fmt.str "%a" pp_verdict x in
  Fmt.pf ppf "%-30s %-6s %-6s %-6s" s.tool (v s.comprehensive)
    (v s.pattern_agnostic) (v s.concise)
