(** A DataCollider-style sampling race detector (Erickson et al.,
    OSDI'10) — the detector whose output §2.3 quotes ("104 data races
    out of 113 detected races were benign").  It traps a sampled
    access, stalls the thread for a delay window while watching the
    location, and reports anything that collides — benign or not. *)

module Iid = Ksim.Access.Iid

type report = {
  sampled : Ksim.Access.t;
  racing : Ksim.Access.t;
}

type result = {
  races : report list;   (** deduplicated by static pair *)
  rounds : int;
  traps_placed : int;
}

val race_key : report -> string

val detect :
  ?rounds:int -> ?window:int -> ?seed:int -> prologue:int list ->
  Ksim.Program.group -> result

val benign_fraction : result -> Aitia.Chain.t -> float
(** The share of detected races the ground-truth causality chain does
    not need — the manual-triage burden AITIA removes. *)

val pp : result Fmt.t
