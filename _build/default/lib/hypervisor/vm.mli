(** Virtual-machine instances with run accounting.

    Each schedule is one run of a guest; a run ending in a kernel
    failure forces a VM reboot — the dominant cost of Causality Analysis
    in the paper (§5.1).  The substrate reverts a persistent machine
    instead, so these costs are modeled explicitly to preserve the
    LIFS-cheap / CA-expensive time shape. *)

type cost_model = {
  per_schedule : float;  (** seconds per enforced schedule *)
  per_reboot : float;    (** extra seconds when a run fails *)
}

val default_costs : cost_model
(** Calibrated from Table 2's per-schedule rates. *)

type t

val create : ?costs:cost_model -> Ksim.Program.group -> t
val group : t -> Ksim.Program.group

val boot : t -> Ksim.Machine.t
(** A fresh guest (a snapshot restore, in the paper's terms). *)

val run :
  ?max_steps:int -> t -> Controller.policy -> Controller.outcome
(** Run one schedule on a fresh guest, recording the outcome. *)

val runs : t -> int
val failures : t -> int
val total_steps : t -> int

val simulated_seconds : t -> float
(** Wall-clock estimate under the cost model. *)

val pp_stats : t Fmt.t
