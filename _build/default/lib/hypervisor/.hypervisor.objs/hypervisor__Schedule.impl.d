lib/hypervisor/schedule.ml: Controller Fmt Ksim List String
