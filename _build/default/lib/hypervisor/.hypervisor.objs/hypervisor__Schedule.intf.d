lib/hypervisor/schedule.mli: Controller Fmt Ksim
