lib/hypervisor/vm.mli: Controller Fmt Ksim
