lib/hypervisor/controller.mli: Fmt Ksim
