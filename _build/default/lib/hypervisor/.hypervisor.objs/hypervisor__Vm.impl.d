lib/hypervisor/vm.ml: Controller Fmt Ksim
