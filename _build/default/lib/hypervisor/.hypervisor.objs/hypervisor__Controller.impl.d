lib/hypervisor/controller.ml: Fmt Ksim List
