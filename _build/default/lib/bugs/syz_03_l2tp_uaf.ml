(* Syzkaller bug #3 — "KASAN: use-after-free Read in pppol2tp_connect"
   (L2TP, multi-variable).

   The connect path checks the tunnel's session count and then uses the
   session pointer; teardown clears count, pointer and frees the session
   as three separate steps:

     A (pppol2tp_connect)            B (l2tp_session_delete)
     A1  if (session_count == 0) ret B1  session_count = 0
     A2  s = session_ptr             B2  session_ptr = NULL
     A2c if (!s) return              B3  kfree(s)
     A3  s->refcnt ...    <- UAF

   Chain: (A1 => B1) --> (A2 => B2) --> (B3 => A3) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "l2tp_stat_sess"; "l2tp_stat_del" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "tun3" ] "init" "socket"
      ([ alloc "I1" "s" "l2tp_session" ~fields:[ ("refcnt", cint 1) ]
          ~func:"l2tp_session_create" ~line:1660;
        store "I2" (g "session_ptr") (reg "s") ~func:"l2tp_session_create"
          ~line:1661;
        store "I3" (g "session_count") (cint 1) ~func:"l2tp_session_create"
          ~line:1662 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"l2tp3_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "tun3" ] "A" "connect"
      (Caselib.array_noise ~prefix:"A" ~buf:"l2tp3_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "cnt" (g "session_count") ~func:"pppol2tp_connect"
           ~line:750;
         branch_if "A1_chk" (Eq (reg "cnt", cint 0)) "A_ret"
           ~func:"pppol2tp_connect" ~line:751;
         load "A2" "s" (g "session_ptr") ~func:"pppol2tp_connect" ~line:755;
         branch_if "A2_chk" (Is_null (reg "s")) "A_ret"
           ~func:"pppol2tp_connect" ~line:756 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:9
      @ [ load "A3" "rc" (reg "s" **-> "refcnt") ~func:"pppol2tp_connect"
            ~line:760;
          return "A_ret" ~func:"pppol2tp_connect" ~line:770 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "tun3" ] "B" "close"
      (Caselib.array_noise ~prefix:"B" ~buf:"l2tp3_cpustats" ~slots:16 ~iters:16
      @ [ store "B1" (g "session_count") (cint 0)
           ~func:"l2tp_session_delete" ~line:1720;
         load "B1b" "s" (g "session_ptr") ~func:"l2tp_session_delete"
           ~line:1721;
         branch_if "B1_chk" (Is_null (reg "s")) "B_ret"
           ~func:"l2tp_session_delete" ~line:1722 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:9
      @ [ store "B2" (g "session_ptr") cnull ~func:"l2tp_session_delete"
            ~line:1725;
          free "B3" (reg "s") ~func:"l2tp_session_free" ~line:1730;
          return "B_ret" ~func:"l2tp_session_delete" ~line:1740 ])
  in
  Ksim.Program.group ~name:"syz-03-l2tp-uaf"
    ~globals:
      ([ ("l2tp3_cpustats", Ksim.Value.Null); ("session_ptr", Ksim.Value.Null); ("session_count", Ksim.Value.Int 0) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-03-l2tp-uaf";
    subsystem = "L2TP";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "recvmsg") ]
        ~symptom:"KASAN: use-after-free" ~location:"A3" ~subsystem:"L2TP" () }

let bug : Bug.t =
  { id = "syz-03";
    source =
      Bug.Syzkaller
        { index = 3;
          title = "KASAN: use-after-free Read in pppol2tp_connect" };
    subsystem = "L2TP";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 3;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 65.8; p_lifs_scheds = 178; p_interleavings = 1;
          p_ca_time = 1035.6; p_ca_scheds = 773; p_chain_races = Some 2 };
    max_interleavings = None;
    description =
      "Teardown clears the correlated (count, pointer) pair and frees the \
       session between connect's checks and its dereference.";
    case }
