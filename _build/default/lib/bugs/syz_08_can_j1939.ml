(* Syzkaller bug #8 — "fix uaf for rx_kref of j1939_priv" (CAN,
   multi-variable, interleaving count 2).  Unfixed at evaluation time.

   bind() and netdev-down race on the correlated pair (netdev_up,
   priv_ptr), in the same steered structure as CVE-2017-15649, but the
   terminal step is a kfree that lands under bind's still-running
   initialization:

     A (j1939 bind)                  B (netdev notifier)
     A2  if (!netdev_up) return      B2   if (priv_ptr) return
     A5  priv = kmalloc()            B11  netdev_up = 0
     A6  priv_ptr = priv             B12  if (priv_ptr)
     A12 priv->rx_kref = 1  <- UAF   B13      kfree(priv_ptr)

   Chain: (A2 => B11) /\ (B2 => A6) --> (A6 => B12) --> (B13 => A12)
   --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "can_stat_rx"; "can_stat_tx"; "j1939_stat_sessions" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "can8" ] "A" "bind"
      ([ load "A2" "up" (g "netdev_up") ~func:"j1939_netdev_start" ~line:230;
         branch_if "A2_chk" (Eq (reg "up", cint 0)) "A_ret"
           ~func:"j1939_netdev_start" ~line:231;
         alloc "A5" "priv" "j1939_priv" ~fields:[ ("rx_kref", cint 0) ]
           ~func:"j1939_priv_create" ~line:240;
         store "A6" (g "priv_ptr") (reg "priv") ~func:"j1939_netdev_start"
           ~line:245 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:9
      @ [ store "A12" (reg "priv" **-> "rx_kref") (cint 1)
            ~func:"j1939_netdev_start" ~line:250;
          return "A_ret" ~func:"j1939_netdev_start" ~line:260 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "can8" ] "B" "netdev_down"
      ([ load "B2" "p" (g "priv_ptr") ~func:"j1939_netdev_notify" ~line:330;
         branch_if "B2_chk" (Not (Is_null (reg "p"))) "B_ret"
           ~func:"j1939_netdev_notify" ~line:331 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:9
      @ [ store "B11" (g "netdev_up") (cint 0) ~func:"j1939_netdev_notify"
            ~line:335;
          load "B12" "p2" (g "priv_ptr") ~func:"j1939_netdev_notify"
            ~line:336;
          branch_if "B12_chk" (Is_null (reg "p2")) "B_ret"
            ~func:"j1939_netdev_notify" ~line:337;
          free "B13" (reg "p2") ~func:"j1939_priv_put" ~line:340;
          return "B_ret" ~func:"j1939_netdev_notify" ~line:350 ])
  in
  Ksim.Program.group ~name:"syz-08-can-j1939"
    ~globals:
      ([ ("netdev_up", Ksim.Value.Int 1); ("priv_ptr", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-08-can-j1939";
    subsystem = "CAN";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "sendmsg") ]
        ~symptom:"KASAN: use-after-free" ~location:"A12" ~subsystem:"CAN" () }

let bug : Bug.t =
  { id = "syz-08";
    source =
      Bug.Syzkaller
        { index = 8; title = "WARNING: refcount bug in j1939_netdev_start" };
    subsystem = "CAN";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 2; exp_chain_races = Some 4;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 2818.8; p_lifs_scheds = 1044; p_interleavings = 2;
          p_ca_time = 3286.0; p_ca_scheds = 1469; p_chain_races = Some 5 };
    max_interleavings = None;
    description =
      "Multi-variable atomicity violation on (netdev_up, priv_ptr) \
       steering the notifier into freeing the priv that bind is still \
       initializing.";
    case }
