(* Metadata for the modeled concurrency-bug corpus: the 10 CVEs of
   Table 2, the 12 Syzkaller failures of Table 3, and the paper's figure
   examples. *)

type source =
  | Cve of string                               (* "CVE-2017-15649" *)
  | Syzkaller of { index : int; title : string }
  | Figure of string                            (* "Figure 1" *)
  (* Extension cases beyond the paper's evaluation (e.g. the hardware-IRQ
     future work of its §4.6). *)
  | Extension of string

type bug_type =
  | Use_after_free
  | Slab_out_of_bounds
  | Assertion_violation
  | General_protection_fault
  | Memory_leak
  | Null_dereference
  | Refcount_warning
  | List_corruption

let bug_type_name = function
  | Use_after_free -> "Use-after-free access"
  | Slab_out_of_bounds -> "Slab-out-of-bound access"
  | Assertion_violation -> "Assertion violation"
  | General_protection_fault -> "General protection fault"
  | Memory_leak -> "Memory leak"
  | Null_dereference -> "NULL pointer dereference"
  | Refcount_warning -> "Refcount warning"
  | List_corruption -> "List corruption"

(* Multi-variable classification of §5.2: [Loosely] marks the asterisked
   entries whose racing objects are loosely correlated. *)
type variables = Single | Multi | Multi_loose

let variables_name = function
  | Single -> "No"
  | Multi -> "Yes"
  | Multi_loose -> "Yes*"

type expectation = {
  (* Shape this model is expected to exhibit, used by tests. *)
  exp_interleavings : int;       (* LIFS interleaving count *)
  exp_chain_races : int option;  (* "# of races in chain" where reported *)
  exp_ambiguous : bool;          (* CVE-2016-10200 only *)
  exp_kthread : bool;            (* involves a kernel background thread *)
}

(* The rows of Tables 2 and 3 as published, for paper-vs-measured
   comparison in the benchmark harness. *)
type paper_stats = {
  p_lifs_time : float;        (* seconds *)
  p_lifs_scheds : int;
  p_interleavings : int;
  p_ca_time : float;          (* seconds *)
  p_ca_scheds : int;
  p_chain_races : int option; (* Table 3 only *)
}

type t = {
  id : string;               (* short stable id, e.g. "cve-2017-15649" *)
  source : source;
  subsystem : string;
  bug_type : bug_type;
  variables : variables;
  fixed_at_eval : bool;      (* bold rows of Table 3 were NOT yet fixed *)
  expectation : expectation;
  paper : paper_stats option;
  (* Some models need a deeper interleaving search than the default. *)
  max_interleavings : int option;
  description : string;
  case : unit -> Aitia.Diagnose.case;
}

let pp_source ppf = function
  | Cve s -> Fmt.string ppf s
  | Syzkaller { index; title } -> Fmt.pf ppf "syzkaller#%d (%s)" index title
  | Figure s -> Fmt.string ppf s
  | Extension s -> Fmt.pf ppf "extension (%s)" s

let pp ppf b =
  Fmt.pf ppf "%-18s %-14s %-26s multi=%s" b.id b.subsystem
    (bug_type_name b.bug_type)
    (variables_name b.variables)
