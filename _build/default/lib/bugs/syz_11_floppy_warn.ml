(* Syzkaller bug #11 — "WARNING in schedule_bh" (Floppy, single
   variable).  Unfixed at evaluation time; reported by the authors and
   confirmed.

   Two submitters both pass the bh_pending check, both schedule the
   bottom half, and the handler count check fires:

     A / B (ioctl_fdrawcmd, symmetric)
     X1  if (bh_pending) return
     X2  bh_pending = 1
     X3  c = bh_count
     X4  bh_count = c + 1
     X5  WARN_ON(bh_count > 1)

   Chain: (A1 => B2) --> (B4 => A3) --> WARNING. *)

open Ksim.Program.Build

let counters = [ "fdc_stat_cmds"; "fdc_stat_irqs" ]

let submitter name pfx =
  Caselib.syscall_thread ~resources:[ "fd0" ] name "ioctl_fdrawcmd"
    ([ load (pfx ^ "1") "p" (g "bh_pending") ~func:"schedule_bh" ~line:990;
       branch_if (pfx ^ "1_chk") (Ne (reg "p", cint 0)) (pfx ^ "_ret")
         ~func:"schedule_bh" ~line:991 ]
    @ Caselib.noise ~prefix:pfx ~counters ~iters:8
    @ [ store (pfx ^ "2") (g "bh_pending") (cint 1) ~func:"schedule_bh"
          ~line:995;
        load (pfx ^ "3") "c" (g "bh_count") ~func:"schedule_bh" ~line:996;
        store (pfx ^ "4") (g "bh_count") (Add (reg "c", cint 1))
          ~func:"schedule_bh" ~line:997;
        load (pfx ^ "5") "c2" (g "bh_count") ~func:"schedule_bh" ~line:998;
        warn_on (pfx ^ "6") (Gt (reg "c2", cint 1)) ~func:"schedule_bh"
          ~line:999;
        return (pfx ^ "_ret") ~func:"schedule_bh" ~line:1000 ])

let group =
  Ksim.Program.group ~name:"syz-11-floppy-warn"
    ~globals:
      ([ ("bh_pending", Ksim.Value.Int 0); ("bh_count", Ksim.Value.Int 0) ]
      @ Caselib.noise_globals counters)
    [ submitter "A" "A"; submitter "B" "B" ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-11-floppy-warn";
    subsystem = "Floppy";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "read") ] ~symptom:"WARNING"
        ~location:"A6" ~subsystem:"Floppy" () }

let bug : Bug.t =
  { id = "syz-11";
    source = Bug.Syzkaller { index = 11; title = "WARNING in schedule_bh" };
    subsystem = "Floppy";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 72.4; p_lifs_scheds = 15; p_interleavings = 1;
          p_ca_time = 1692.9; p_ca_scheds = 627; p_chain_races = Some 2 };
    max_interleavings = None;
    description =
      "Both submitters pass the bh_pending check and double-schedule the \
       bottom half; the handler-count warning fires.";
    case }
