(* CVE-2018-12232 — SockFS: close() vs fchownat() NULL dereference.

   sock_close() clears SOCK_INODE(inode)->sk while a concurrent
   fchownat() on the same inode walks to the socket and dereferences it:

     A (close)                      B (fchownat)
     A1  sk = inode_sk              B1  sk = inode_sk
     A2  inode_sk = NULL            B1c if (!sk) return -ENOENT
     A3  sock_release(sk) [free]    B2  sk->owner = uid    <- UAF/NULL

   The window where A has cleared the pointer but B already loaded it
   yields a use-after-free once A3 runs.
   Chain: (B1 => A2) --> (A3 => B2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "sockfs_stat_alloc"; "sockfs_stat_inuse" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "sock3" ] "init" "socket"
      ([ alloc "I1" "sk" "socket" ~fields:[ ("owner", cint 0) ]
          ~func:"sock_alloc" ~line:570;
        store "I2" (g "inode_sk") (reg "sk") ~func:"sock_alloc" ~line:571 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"sockfs_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "sock3" ] "A" "close"
      (Caselib.array_noise ~prefix:"A" ~buf:"sockfs_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "sk" (g "inode_sk") ~func:"sock_close" ~line:1180;
         branch_if "A1_chk" (Is_null (reg "sk")) "A_ret" ~func:"sock_close"
           ~line:1181 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:10
      @ [ store "A2" (g "inode_sk") cnull ~func:"sock_release" ~line:600;
          free "A3" (reg "sk") ~func:"sock_release" ~line:605;
          return "A_ret" ~func:"sock_close" ~line:1190 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "sock3" ] "B" "fchownat"
      (Caselib.array_noise ~prefix:"B" ~buf:"sockfs_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "sk" (g "inode_sk") ~func:"sockfs_setattr" ~line:535;
         branch_if "B1_chk" (Is_null (reg "sk")) "B_ret"
           ~func:"sockfs_setattr" ~line:536 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:10
      @ [ store "B2" (reg "sk" **-> "owner") (cint 1000)
            ~func:"sockfs_setattr" ~line:540;
          return "B_ret" ~func:"sockfs_setattr" ~line:545 ])
  in
  Ksim.Program.group ~name:"cve-2018-12232"
    ~globals:([ ("sockfs_cpustats", Ksim.Value.Null); ("inode_sk", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2018-12232";
    subsystem = "SockFS";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "fstat") ]
        ~symptom:"KASAN: use-after-free" ~location:"B2" ~subsystem:"SockFS"
        () }

let bug : Bug.t =
  { id = "cve-2018-12232";
    source = Bug.Cve "CVE-2018-12232";
    subsystem = "SockFS";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 37.8; p_lifs_scheds = 536; p_interleavings = 1;
          p_ca_time = 511.4; p_ca_scheds = 680; p_chain_races = None };
    max_interleavings = None;
    description =
      "sock_close clears and frees the inode's socket while a concurrent \
       fchownat writes through its stale copy of the pointer.";
    case }
