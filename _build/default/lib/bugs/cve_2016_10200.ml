(* CVE-2016-10200 — L2TP: bind() vs connect() on the session hash.

   The connect path publishes the two halves of the socket's hash state
   (v4 bind flag and hash bucket) non-atomically while a concurrent
   recv-path reader consumes them in the opposite order.  This is the
   one evaluation case where Causality Analysis hits the ambiguity of
   §3.4: the surrounding race (A1 => B2) cannot be flipped while
   preserving the nested one (A2 => B1).

     B0  sk_ready = 1   (bind publishes the socket)
     A0  if (!sk_ready) return
     A1  sk_bound = 1                B1  h = sk_hash
     A2  sk_hash  = 1                B2  b = sk_bound
                                     B3  BUG_ON(h && b)

   Chain: (B0 => A0) --> (A2 => B1) --> (A1 => B2)? --> BUG_ON, with the
   last race reported ambiguous. *)

open Ksim.Program.Build

let counters = [ "l2tp_stat_rx"; "l2tp_stat_tx" ]

let group =
  let thread_bind =
    Caselib.syscall_thread ~resources:[ "l2tp3" ] "B" "bind"
      ([ store "B0" (g "sk_ready") (cint 1) ~func:"l2tp_ip_bind" ~line:270 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:7
      @ [ load "B1" "h" (g "sk_hash") ~func:"l2tp_ip_recv" ~line:180;
          load "B2" "b" (g "sk_bound") ~func:"l2tp_ip_recv" ~line:181;
          bug_on "B3" (And (reg "h", reg "b")) ~func:"l2tp_ip_recv" ~line:182 ])
  in
  let thread_connect =
    Caselib.syscall_thread ~resources:[ "l2tp3" ] "A" "connect"
      ([ load "A0" "ready" (g "sk_ready") ~func:"l2tp_ip_connect" ~line:320;
         branch_if "A0_chk" (Eq (reg "ready", cint 0)) "A_ret"
           ~func:"l2tp_ip_connect" ~line:321 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:7
      @ [ store "A1" (g "sk_bound") (cint 1) ~func:"l2tp_ip_connect" ~line:330;
          store "A2" (g "sk_hash") (cint 1) ~func:"l2tp_ip_connect" ~line:331;
          return "A_ret" ~func:"l2tp_ip_connect" ~line:340 ])
  in
  Ksim.Program.group ~name:"cve-2016-10200"
    ~globals:
      ([ ("sk_ready", Ksim.Value.Int 0); ("sk_bound", Ksim.Value.Int 0);
         ("sk_hash", Ksim.Value.Int 0) ]
      @ Caselib.noise_globals counters)
    [ thread_connect; thread_bind ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2016-10200";
    subsystem = "L2TP";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "sendmsg") ]
        ~symptom:"kernel BUG (BUG_ON)" ~location:"B3" ~subsystem:"L2TP" () }

let bug : Bug.t =
  { id = "cve-2016-10200";
    source = Bug.Cve "CVE-2016-10200";
    subsystem = "L2TP";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = None; exp_ambiguous = true;
        exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 32.8; p_lifs_scheds = 112; p_interleavings = 1;
          p_ca_time = 184.9; p_ca_scheds = 159; p_chain_races = None };
    max_interleavings = None;
    description =
      "Non-atomic publication of the (bound, hash) pair consumed in the \
       opposite order — the evaluation's single ambiguity case.";
    case }
