(* Syzkaller bug #6 — "general protection fault in
   dev_map_hash_update_elem" (BPF, multi-variable).

   Update and release race on the correlated pair (map_active,
   entry_ptr), with the same structure as CVE-2017-15649: the
   multi-variable atomicity violation steers release into poisoning the
   entry that update then dereferences:

     A (update_elem)                 B (map_release)
     A2  if (!map_active) return     B2   if (entry_ptr) return
     A5  e = kmalloc()               B11  map_active = 0
     A6  entry_ptr = e               B12  if (entry_ptr)
     A8  q = entry_ptr               B13      entry_ptr = POISON
     A9  q->val = 1   <- GPF

   Chain: (A2 => B11) /\ (B2 => A6) --> (A6 => B12) --> (B13 => A8)
   --> general protection fault. *)

open Ksim.Program.Build

let counters = [ "bpf_stat_lookups"; "bpf_stat_updates"; "bpf_stat_runs" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "map6" ] "A" "bpf_update_elem"
      ([ load "A2" "act" (g "map_active") ~func:"dev_map_hash_update_elem"
           ~line:620;
         branch_if "A2_chk" (Eq (reg "act", cint 0)) "A_ret"
           ~func:"dev_map_hash_update_elem" ~line:621;
         alloc "A5" "e" "bpf_dtab_netdev" ~fields:[ ("val", cint 0) ]
           ~func:"dev_map_hash_update_elem" ~line:630;
         store "A6" (g "entry_ptr") (reg "e")
           ~func:"dev_map_hash_update_elem" ~line:635 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ load "A8" "q" (g "entry_ptr") ~func:"dev_map_hash_update_elem"
            ~line:640;
          store "A9" (reg "q" **-> "val") (cint 1)
            ~func:"dev_map_hash_update_elem" ~line:641;
          return "A_ret" ~func:"dev_map_hash_update_elem" ~line:650 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "map6" ] "B" "close"
      ([ load "B2" "p" (g "entry_ptr") ~func:"dev_map_free" ~line:720;
         branch_if "B2_chk" (Not (Is_null (reg "p"))) "B_ret"
           ~func:"dev_map_free" ~line:721 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ store "B11" (g "map_active") (cint 0) ~func:"dev_map_free"
            ~line:725;
          load "B12" "p2" (g "entry_ptr") ~func:"dev_map_free" ~line:726;
          branch_if "B12_chk" (Is_null (reg "p2")) "B_ret"
            ~func:"dev_map_free" ~line:727;
          store "B13" (g "entry_ptr") (Const (Ksim.Value.Int 0xdead))
            ~func:"dev_map_free" ~line:728;
          return "B_ret" ~func:"dev_map_free" ~line:730 ])
  in
  Ksim.Program.group ~name:"syz-06-bpf-gpf"
    ~globals:
      ([ ("map_active", Ksim.Value.Int 1); ("entry_ptr", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-06-bpf-gpf";
    subsystem = "BPF";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "bpf_prog_run") ]
        ~symptom:"general protection fault" ~location:"A9" ~subsystem:"BPF"
        () }

let bug : Bug.t =
  { id = "syz-06";
    source =
      Bug.Syzkaller
        { index = 6;
          title = "general protection fault in dev_map_hash_update_elem" };
    subsystem = "BPF";
    bug_type = Bug.General_protection_fault;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 2; exp_chain_races = Some 4;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 755.0; p_lifs_scheds = 176; p_interleavings = 1;
          p_ca_time = 988.0; p_ca_scheds = 388; p_chain_races = Some 4 };
    max_interleavings = None;
    description =
      "Multi-variable atomicity violation on (map_active, entry_ptr) \
       steering map teardown into poisoning the entry the update path \
       dereferences.";
    case }
