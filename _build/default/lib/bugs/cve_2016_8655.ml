(* CVE-2016-8655 — packet socket: pg_vec ring use-after-free.

   packet_set_ring()'s teardown frees the ring buffer while a concurrent
   transmit path still holds a pointer to it:

     A (setsockopt ring teardown)    B (sendmsg)
     A1  r = ring_ptr                B1  r = ring_ptr
     A2  kfree(r)                    B1c if (!r) return
     A3  ring_ptr = NULL             B2  r->slot ...      <- UAF

   Chain: (B1 => A3) --> (A2 => B2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "pkt_ring_stat"; "pkt_drop_stat" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "sock8" ] "init" "setsockopt"
      ([ alloc "I1" "ring" "pg_vec" ~fields:[ ("slot", cint 0) ]
          ~func:"packet_set_ring" ~line:4200;
        store "I2" (g "ring_ptr") (reg "ring") ~func:"packet_set_ring"
          ~line:4201 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"pkt8655_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "sock8" ] "A" "setsockopt_version"
      (Caselib.array_noise ~prefix:"A" ~buf:"pkt8655_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "r" (g "ring_ptr") ~func:"packet_set_ring" ~line:4240;
         branch_if "A1_chk" (Is_null (reg "r")) "A_ret"
           ~func:"packet_set_ring" ~line:4241 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ free "A2" (reg "r") ~func:"packet_set_ring" ~line:4250;
          store "A3" (g "ring_ptr") cnull ~func:"packet_set_ring" ~line:4251;
          return "A_ret" ~func:"packet_set_ring" ~line:4260 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "sock8" ] "B" "sendmsg"
      (Caselib.array_noise ~prefix:"B" ~buf:"pkt8655_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "r" (g "ring_ptr") ~func:"tpacket_snd" ~line:2830;
         branch_if "B1_chk" (Is_null (reg "r")) "B_ret" ~func:"tpacket_snd"
           ~line:2831 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ store "B2" (reg "r" **-> "slot") (cint 1) ~func:"tpacket_snd"
            ~line:2840;
          return "B_ret" ~func:"tpacket_snd" ~line:2850 ])
  in
  Ksim.Program.group ~name:"cve-2016-8655"
    ~globals:([ ("pkt8655_cpustats", Ksim.Value.Null); ("ring_ptr", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2016-8655";
    subsystem = "Packet socket";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "recvmsg") ]
        ~symptom:"KASAN: use-after-free" ~location:"B2"
        ~subsystem:"Packet socket" () }

let bug : Bug.t =
  { id = "cve-2016-8655";
    source = Bug.Cve "CVE-2016-8655";
    subsystem = "Packet socket";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 47.8; p_lifs_scheds = 213; p_interleavings = 1;
          p_ca_time = 184.0; p_ca_scheds = 135; p_chain_races = None };
    max_interleavings = None;
    description =
      "Ring teardown frees pg_vec while the transmit path writes through \
       its stale pointer.";
    case }
