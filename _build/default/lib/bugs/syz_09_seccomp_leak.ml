(* Syzkaller bug #9 — "memory leak in do_seccomp" (Seccomp, loosely
   correlated).  Unfixed at evaluation time; reported by the authors.

   Two concurrent filter installations race on the check-then-publish of
   the filter pointer; the overwritten filter is never freed.  The TSYNC
   flag that should have serialized them lives in the task struct, the
   filter in the seccomp subsystem — loosely correlated objects:

     A (seccomp install)             B (seccomp TSYNC install)
     A0  if (tsync) return           B0  tsync = 1
     A1  if (filter_ptr) return      B1  if (filter_ptr) goto put
     A2  f = kmalloc()               B2  f' = kmalloc()
     A3  filter_ptr = f              B3  filter_ptr = f'
                                     B4  cur = filter_ptr
                                     B5  kfree(cur)     (exit teardown)

   A's filter overwrites B's published pointer after B's teardown ran:
   exactly one of the two is ever freed.
   Chain: (A0 => B0) --> (A1 => B3) --> memory leak. *)

open Ksim.Program.Build

let counters = [ "seccomp_stat_installs"; "task_stat_forks" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "task9" ] "A" "seccomp"
      ([ load "A0" "ts" (g "tsync") ~func:"do_seccomp" ~line:1380;
         branch_if "A0_chk" (Ne (reg "ts", cint 0)) "A_ret" ~func:"do_seccomp"
           ~line:1381 ]
      @ Caselib.filler ~prefix:"A" 14
      @ [ load "A1" "f" (g "filter_ptr") ~func:"seccomp_attach_filter"
           ~line:1400;
         branch_if "A1_chk" (Not (Is_null (reg "f"))) "A_ret"
           ~func:"seccomp_attach_filter" ~line:1401 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:9
      @ [ alloc "A2" "newf" "seccomp_filter" ~leak_check:true
            ~func:"seccomp_prepare_filter" ~line:1410;
          store "A3" (g "filter_ptr") (reg "newf")
            ~func:"seccomp_attach_filter" ~line:1415;
          return "A_ret" ~func:"do_seccomp" ~line:1420 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "task9" ] "B" "seccomp_tsync"
      ([ store "B0" (g "tsync") (cint 1) ~func:"do_seccomp" ~line:1380 ]
      @ Caselib.filler ~prefix:"B" 14
      @ [ load "B1" "f" (g "filter_ptr") ~func:"seccomp_attach_filter"
           ~line:1400;
         branch_if "B1_chk" (Not (Is_null (reg "f"))) "B4"
           ~func:"seccomp_attach_filter" ~line:1401 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:9
      @ [ alloc "B2" "newf" "seccomp_filter" ~leak_check:true
            ~func:"seccomp_prepare_filter" ~line:1410;
          store "B3" (g "filter_ptr") (reg "newf")
            ~func:"seccomp_attach_filter" ~line:1415;
          load "B4" "cur" (g "filter_ptr") ~func:"seccomp_filter_release"
            ~line:1500;
          free "B5" (reg "cur") ~func:"seccomp_filter_release" ~line:1501;
          return "B_teardown" ~func:"seccomp_filter_release" ~line:1510 ])
  in
  Ksim.Program.group ~name:"syz-09-seccomp-leak"
    ~globals:
      ([ ("tsync", Ksim.Value.Int 0); ("filter_ptr", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-09-seccomp-leak";
    subsystem = "Seccomp";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "prctl") ]
        ~symptom:"memory leak" ~subsystem:"Seccomp" () }

let bug : Bug.t =
  { id = "syz-09";
    source = Bug.Syzkaller { index = 9; title = "memory leak in do_seccomp" };
    subsystem = "Seccomp";
    bug_type = Bug.Memory_leak;
    variables = Bug.Multi_loose;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 1526.4; p_lifs_scheds = 628; p_interleavings = 1;
          p_ca_time = 1452.6; p_ca_scheds = 848; p_chain_races = Some 2 };
    max_interleavings = None;
    description =
      "Concurrent filter installation overwrites a just-published filter \
       that the exit path then never frees (loosely correlated task \
       flag / seccomp filter).";
    case }
