(* Lookup for the modeled bug corpus. *)

let figures : Bug.t list =
  [ Fig1_nullderef.bug; Fig4_single_syscall.bug; Fig5_search.bug;
    Fig7_nested.bug; Fig9_irqfd.bug ]

let cves : Bug.t list =
  [ Cve_2019_11486.bug; Cve_2019_6974.bug; Cve_2018_12232.bug;
    Cve_2017_15649.bug; Cve_2017_10661.bug; Cve_2017_7533.bug;
    Cve_2017_2671.bug; Cve_2017_2636.bug; Cve_2016_10200.bug;
    Cve_2016_8655.bug ]

let syzkaller : Bug.t list =
  [ Syz_01_l2tp_oob.bug; Syz_02_packet_assert.bug; Syz_03_l2tp_uaf.bug;
    Syz_04_kvm_irqfd.bug; Syz_05_rxrpc_uaf.bug; Syz_06_bpf_gpf.bug;
    Syz_07_blkdev_uaf.bug; Syz_08_can_j1939.bug; Syz_09_seccomp_leak.bug;
    Syz_10_md_assert.bug; Syz_11_floppy_warn.bug; Syz_12_bluetooth_uaf.bug ]

(* Extension cases beyond the paper's evaluation: the hardware-IRQ
   future work of its Sec. 4.6 and the critical-section-order class its
   Sec. 3.4 liveness rule exists for. *)
let extensions : Bug.t list = [ Ext_irq_nic.bug; Ext_lock_order.bug ]

let all : Bug.t list = figures @ cves @ syzkaller @ extensions

let find id = List.find_opt (fun (b : Bug.t) -> String.equal b.id id) all

let ids () = List.map (fun (b : Bug.t) -> b.id) all
