(* CVE-2017-7533 — inotify vs rename(): slab-out-of-bounds read.

   inotify_handle_event() reads the dentry name while a concurrent
   rename() swaps it for a shorter one; the event path uses the stale
   length with the new buffer — a multi-variable race on the correlated
   pair (name buffer, name length):

     A (rename)                      B (inotify event)
     A1  new = kmalloc(short)        B1  len = d_name_len
     A2  d_name_ptr = new            B2  buf = d_name_ptr
     A3  d_name_len = 2              B3  c = buf[len-1]    <- OOB

   Chain: (B1 => A3) /\ (A2 => B2) --> slab-out-of-bounds. *)

open Ksim.Program.Build

let counters = [ "fsnotify_stat_events"; "dcache_stat_hits"; "vfs_stat_renames" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "watch9" ] "init" "inotify_add_watch"
      ([ alloc "I1" "name" "dentry_name" ~slots:4 ~func:"d_alloc" ~line:1700;
        store "I2" (g "d_name_ptr") (reg "name") ~func:"d_alloc" ~line:1701;
        store "I3" (g "d_name_len") (cint 4) ~func:"d_alloc" ~line:1702 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"fsnotify_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "watch9" ] "A" "rename"
      (Caselib.array_noise ~prefix:"A" ~buf:"fsnotify_cpustats" ~slots:16 ~iters:16
      @ [ alloc "A1" "new_name" "dentry_name" ~slots:2 ~func:"d_move"
           ~line:2840 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:12
      @ [ store "A2" (g "d_name_ptr") (reg "new_name") ~func:"d_move"
            ~line:2845;
          store "A3" (g "d_name_len") (cint 2) ~func:"d_move" ~line:2846 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "watch9" ] "B" "read_events"
      (Caselib.array_noise ~prefix:"B" ~buf:"fsnotify_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "len" (g "d_name_len") ~func:"inotify_handle_event"
           ~line:90 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:12
      @ [ load "B2" "buf" (g "d_name_ptr") ~func:"inotify_handle_event"
            ~line:95;
          load "B3" "c" (reg "buf" **@ Sub (reg "len", cint 1))
            ~func:"inotify_handle_event" ~line:96 ])
  in
  Ksim.Program.group ~name:"cve-2017-7533"
    ~globals:
      ([ ("fsnotify_cpustats", Ksim.Value.Null); ("d_name_ptr", Ksim.Value.Null); ("d_name_len", Ksim.Value.Int 0) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-7533";
    subsystem = "Inotify";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "mkdir") ]
        ~symptom:"KASAN: slab-out-of-bounds" ~location:"B3"
        ~subsystem:"Inotify" () }

let bug : Bug.t =
  { id = "cve-2017-7533";
    source = Bug.Cve "CVE-2017-7533";
    subsystem = "Inotify";
    bug_type = Bug.Slab_out_of_bounds;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 64.5; p_lifs_scheds = 1056; p_interleavings = 1;
          p_ca_time = 1846.7; p_ca_scheds = 1578; p_chain_races = None };
    max_interleavings = None;
    description =
      "rename() swaps the dentry name for a shorter buffer between the \
       event path's reads of the correlated (length, buffer) pair.";
    case }
