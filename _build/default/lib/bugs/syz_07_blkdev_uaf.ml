(* Syzkaller bug #7 — "KASAN: use-after-free Read in delete_partition"
   (Block device, single variable).  Not fixed at evaluation time; the
   fix (bdev_del_partition locking) was submitted before the report.

     A (BLKPG del partition)         B (open partition)
     A1  p = part_ptr                B1  q = part_ptr
     A1c if (!p) return              B1c if (!q) return
     A2  part_ptr = NULL             B2  q->bd_openers  <- UAF
     A3  kfree(p)

   Chain: (B1 => A2) --> (A3 => B2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "blk_stat_ios"; "blk_stat_opens"; "blk_stat_parts" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "blk7" ] "init" "open"
      ([ alloc "I1" "p" "hd_struct" ~fields:[ ("bd_openers", cint 0) ]
          ~func:"add_partition" ~line:330;
        store "I2" (g "part_ptr") (reg "p") ~func:"add_partition" ~line:331 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"blk_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "blk7" ] "A" "ioctl_blkpg"
      (Caselib.array_noise ~prefix:"A" ~buf:"blk_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "p" (g "part_ptr") ~func:"delete_partition" ~line:270;
         branch_if "A1_chk" (Is_null (reg "p")) "A_ret"
           ~func:"delete_partition" ~line:271 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:11
      @ [ store "A2" (g "part_ptr") cnull ~func:"delete_partition" ~line:275;
          free "A3" (reg "p") ~func:"delete_partition" ~line:280;
          return "A_ret" ~func:"delete_partition" ~line:290 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "blk7" ] "B" "open_partition"
      (Caselib.array_noise ~prefix:"B" ~buf:"blk_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "q" (g "part_ptr") ~func:"blkdev_get_part" ~line:1540;
         branch_if "B1_chk" (Is_null (reg "q")) "B_ret"
           ~func:"blkdev_get_part" ~line:1541 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:11
      @ [ load "B2" "openers" (reg "q" **-> "bd_openers")
            ~func:"blkdev_get_part" ~line:1550;
          return "B_ret" ~func:"blkdev_get_part" ~line:1560 ])
  in
  Ksim.Program.group ~name:"syz-07-blkdev-uaf"
    ~globals:([ ("blk_cpustats", Ksim.Value.Null); ("part_ptr", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-07-blkdev-uaf";
    subsystem = "Block device";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "fsync") ]
        ~symptom:"KASAN: use-after-free" ~location:"B2"
        ~subsystem:"Block device" () }

let bug : Bug.t =
  { id = "syz-07";
    source =
      Bug.Syzkaller
        { index = 7; title = "KASAN: use-after-free Read in delete_partition" };
    subsystem = "Block device";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 872.7; p_lifs_scheds = 231; p_interleavings = 1;
          p_ca_time = 1575.0; p_ca_scheds = 523; p_chain_races = Some 4 };
    max_interleavings = None;
    description =
      "Partition deletion clears and frees the partition while a \
       concurrent open reads through its stale pointer.";
    case }
