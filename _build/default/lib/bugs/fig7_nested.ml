(* Figure 7 — a nested data race inside a surrounding one.

     Thread A            Thread B
     A1 store M1 = 1     B1 load M2
     A2 store M2 = 1     B2 load M1
                         B3 BUG_ON(B1 && B2 saw both set)

   Races: A1 => B2 on M1 (surrounding) and A2 => B1 on M2 (nested).
   Flipping either avoids the failure, so both are root causes — and
   Causality Analysis must report the surrounding race as ambiguous: its
   flip could not preserve the nested order (§3.4, "Ambiguity"). *)

open Ksim.Program.Build

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "s0" ] "A" "syscall_a"
      [ store "A1" (g "m1") (cint 1) ~func:"sys_a" ~line:20;
        store "A2" (g "m2") (cint 1) ~func:"sys_a" ~line:21 ]
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "s0" ] "B" "syscall_b"
      [ load "B1" "r1" (g "m2") ~func:"sys_b" ~line:30;
        load "B2" "r2" (g "m1") ~func:"sys_b" ~line:31;
        bug_on "B3" (And (reg "r1", reg "r2")) ~func:"sys_b" ~line:32 ]
  in
  Ksim.Program.group ~name:"fig7"
    ~globals:[ ("m1", Ksim.Value.Int 0); ("m2", Ksim.Value.Int 0) ]
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "fig7-nested";
    subsystem = "example";
    group;
    history =
      Caselib.history ~group ~symptom:"kernel BUG (BUG_ON)" ~location:"B3"
        ~subsystem:"example" () }

let bug : Bug.t =
  { id = "fig7";
    source = Bug.Figure "Figure 7";
    subsystem = "example";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 0; exp_chain_races = Some 1;
        exp_ambiguous = true; exp_kthread = false };
    paper = None;
    max_interleavings = None;
    description =
      "A data race surrounding a nested race: flipping the outer race \
       necessarily flips the inner one, making the outer verdict \
       ambiguous.";
    case }
