(** Metadata for the modeled concurrency-bug corpus: the 10 CVEs of
    Table 2, the 12 Syzkaller failures of Table 3, the paper's figure
    examples, and the extension cases. *)

type source =
  | Cve of string
  | Syzkaller of { index : int; title : string }
  | Figure of string
  | Extension of string
      (** beyond the paper's evaluation, e.g. its §4.6 IRQ future work *)

type bug_type =
  | Use_after_free
  | Slab_out_of_bounds
  | Assertion_violation
  | General_protection_fault
  | Memory_leak
  | Null_dereference
  | Refcount_warning
  | List_corruption

val bug_type_name : bug_type -> string

(** §5.2's multi-variable classification; [Multi_loose] marks the
    asterisked rows whose racing objects are loosely correlated. *)
type variables = Single | Multi | Multi_loose

val variables_name : variables -> string

type expectation = {
  exp_interleavings : int;       (** LIFS interleaving count *)
  exp_chain_races : int option;  (** races in the causality chain *)
  exp_ambiguous : bool;          (** CVE-2016-10200 / Figure 7 only *)
  exp_kthread : bool;            (** chain crosses a kthread boundary *)
}

(** The published Table 2/3 row, for paper-vs-measured comparison. *)
type paper_stats = {
  p_lifs_time : float;
  p_lifs_scheds : int;
  p_interleavings : int;
  p_ca_time : float;
  p_ca_scheds : int;
  p_chain_races : int option;
}

type t = {
  id : string;
  source : source;
  subsystem : string;
  bug_type : bug_type;
  variables : variables;
  fixed_at_eval : bool;  (** bold Table 3 rows were NOT yet fixed *)
  expectation : expectation;
  paper : paper_stats option;
  max_interleavings : int option;  (** deeper search where needed *)
  description : string;
  case : unit -> Aitia.Diagnose.case;
}

val pp_source : source Fmt.t
val pp : t Fmt.t
