(* Figure 4-(b): "even a single system call can race with kernel
   background threads resulting in a failure."

   One system call queues a flush work item and hands the same object to
   an RCU reclaim callback; the failure is a race entirely between the
   two background contexts the call itself created:

     Syscall A                kworkerd W            RCU callback R
     A1  obj = kmalloc()
     A2  dev = obj
     A3  queue_work(flush)    W1  obj->data = 1
     A4  call_rcu(reclaim)                          R1  kfree(obj)
     A5  v = obj->data

   If R1 => W1, the flush work writes into freed memory.
   Chain: (R1 => W1) --> use-after-free; the A5 => R1 pointer race is
   benign (flipping it merely turns the write-UAF into a read-UAF). *)

open Ksim.Program.Build

let counters = [ "wq_stat_flushes" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "dev4" ] "A" "ioctl_flush"
      (Caselib.noise ~prefix:"A" ~counters ~iters:5
      @ [ alloc "A1" "obj" "flush_req" ~fields:[ ("data", cint 0) ]
            ~func:"dev_ioctl_flush" ~line:420;
          store "A2" (g "dev_req") (reg "obj") ~func:"dev_ioctl_flush"
            ~line:421;
          queue_work "A3" "flush_work" ~arg:(reg "obj")
            ~func:"dev_ioctl_flush" ~line:425;
          call_rcu "A4" "reclaim_cb" ~arg:(reg "obj")
            ~func:"dev_ioctl_flush" ~line:430;
          load "A5" "v" (reg "obj" **-> "data") ~func:"dev_ioctl_flush"
            ~line:435 ])
  in
  let flush_work =
    Caselib.entry "flush_work"
      [ store "W1" (reg "arg" **-> "data") (cint 1) ~func:"flush_work_fn"
          ~line:500 ]
  in
  let reclaim =
    Caselib.entry "reclaim_cb"
      [ free "R1" (reg "arg") ~func:"reclaim_rcu" ~line:510 ]
  in
  Ksim.Program.group ~name:"fig4b" ~entries:[ flush_work; reclaim ]
    ~globals:([ ("dev_req", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ thread_a ]

let case () : Aitia.Diagnose.case =
  { case_name = "fig4b-single-syscall";
    subsystem = "example";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "fsync") ]
        ~symptom:"KASAN: use-after-free" ~location:"W1" ~subsystem:"example"
        () }

let bug : Bug.t =
  { id = "fig4b";
    source = Bug.Figure "Figure 4-(b)";
    subsystem = "example";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 1;
        exp_ambiguous = false; exp_kthread = true };
    paper = None;
    max_interleavings = None;
    description =
      "A single system call whose own kworkerd flush and RCU reclaim race \
       with each other — the Figure 4-(b) pattern.";
    case }
