(* Syzkaller bug #12 — "Bluetooth: dangling sco_conn and use-after-free
   in sco_sock_timeout" (Bluetooth, single variable, timer softirq).
   Unfixed at evaluation time.

   connect() arms the SCO timeout with a pointer to the connection;
   close() frees the connection before the timer fires:

     B (connect)                     A (close)             timer
     B1  conn = kmalloc()            A1  c = conn_ptr
     B2  conn_ptr = conn             A1c if (!c) return
     B3  arm_timer(timeout, conn)    A2  conn_ptr = NULL
                                     A3  kfree(c)          T1 conn->state <- UAF

   Chain: (B2 => A1) --> (A3 => T1) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "hci_stat_events"; "sco_stat_conns" ]

let group =
  let thread_b =
    Caselib.syscall_thread ~resources:[ "sco2" ] "B" "connect"
      (Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ alloc "B1" "conn" "sco_conn" ~fields:[ ("state", cint 1) ]
            ~func:"sco_conn_add" ~line:140;
          store "B2" (g "conn_ptr") (reg "conn") ~func:"sco_conn_add"
            ~line:145;
          arm_timer "B3" "sco_sock_timeout" ~arg:(reg "conn")
            ~func:"sco_sock_set_timer" ~line:160 ])
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "sco2" ] "A" "close"
      (Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ load "A1" "c" (g "conn_ptr") ~func:"sco_conn_del" ~line:200;
          branch_if "A1_chk" (Is_null (reg "c")) "A_ret" ~func:"sco_conn_del"
            ~line:201;
          store "A2" (g "conn_ptr") cnull ~func:"sco_conn_del" ~line:205;
          free "A3" (reg "c") ~func:"sco_conn_del" ~line:210;
          return "A_ret" ~func:"sco_conn_del" ~line:220 ])
  in
  let timeout =
    Caselib.entry "sco_sock_timeout"
      [ load "T1" "st" (reg "arg" **-> "state") ~func:"sco_sock_timeout"
          ~line:80 ]
  in
  Ksim.Program.group ~name:"syz-12-bluetooth-uaf" ~entries:[ timeout ]
    ~globals:([ ("conn_ptr", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ thread_b; thread_a ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-12-bluetooth-uaf";
    subsystem = "Bluetooth";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "getsockopt") ]
        ~symptom:"KASAN: use-after-free" ~location:"T1"
        ~subsystem:"Bluetooth" () }

let bug : Bug.t =
  { id = "syz-12";
    source =
      Bug.Syzkaller
        { index = 12;
          title = "Bluetooth: use-after-free in sco_sock_timeout" };
    subsystem = "Bluetooth";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper =
      Some
        { p_lifs_time = 740.1; p_lifs_scheds = 272; p_interleavings = 1;
          p_ca_time = 2032.0; p_ca_scheds = 843; p_chain_races = Some 4 };
    max_interleavings = None;
    description =
      "close() frees the SCO connection before the armed socket timer \
       fires and dereferences it.";
    case }
