(* Figure 1: the abstract multi-variable example.

       Thread A                Thread B
       A1  ptr_valid = 1;      B1  if (ptr_valid == 0) return;
       A2  local = *ptr;       B2  ptr = NULL;

   Initial ptr_valid = 0; ptr points to a live object.  The failing
   sequence A1 => B1 => B2 => A2 dereferences NULL at A2; the causality
   chain is (A1 => B1) --> (B2 => A2) --> NULL deref. *)

open Ksim.Program.Build

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "dev0" ] "init" "open"
      [ alloc "I1" "obj" "device" ~fields:[ ("data", cint 42) ]
          ~func:"dev_open" ~line:10;
        store "I2" (g "ptr") (reg "obj") ~func:"dev_open" ~line:11;
        store "I3" (g "ptr_valid") (cint 0) ~func:"dev_open" ~line:12 ]
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "dev0" ] "A" "ioctl_enable"
      [ store "A1" (g "ptr_valid") (cint 1) ~func:"dev_enable" ~line:20;
        load "A2" "p" (g "ptr") ~func:"dev_enable" ~line:21;
        load "A2_deref" "local" (reg "p" **-> "data") ~func:"dev_enable"
          ~line:21 ]
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "dev0" ] "B" "ioctl_reset"
      [ load "B1" "pv" (g "ptr_valid") ~func:"dev_reset" ~line:30;
        branch_if "B1_chk" (Eq (reg "pv", cint 0)) "B_ret" ~func:"dev_reset"
          ~line:30;
        store "B2" (g "ptr") cnull ~func:"dev_reset" ~line:31;
        return "B_ret" ~func:"dev_reset" ~line:32 ]
  in
  Ksim.Program.group ~name:"fig1"
    ~globals:[ ("ptr", Ksim.Value.Null); ("ptr_valid", Ksim.Value.Int 0) ]
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "fig1-nullderef";
    subsystem = "example";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ]
        ~extra:[ ("X", "getpid"); ("Y", "read") ]
        ~symptom:"null-ptr-deref" ~location:"A2_deref" ~subsystem:"example" () }

let bug : Bug.t =
  { id = "fig1";
    source = Bug.Figure "Figure 1";
    subsystem = "example";
    bug_type = Bug.Null_dereference;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper = None;
    max_interleavings = None;
    description =
      "Abstract two-variable example: a race-steered control flow on \
       ptr_valid enables a NULL store that a concurrent dereference trips \
       over.";
    case }
