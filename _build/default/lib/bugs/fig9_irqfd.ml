(* Figure 9 — the irqfd case study (bug #4's shape).

     Syscall A                  Syscall B                kworkerd
     A1  list_add(irqfd, list)  B1  irqfd = list_find()
     A2  irqfd->data = data     B2  queue_work()         K1  kfree(irqfd)

   A1/A2 are one initialization that must be atomic; the A1 => B1 race
   steers B into queueing the shutdown work, whose kfree races with the
   unfinished initialization: (A1 => B1) --> (K1 => A2) --> UAF.  The
   causality crosses a thread boundary (the freeing instruction runs in a
   kernel background thread invoked by B). *)

open Ksim.Program.Build

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "kvm0" ] "A" "ioctl_irqfd_assign"
      [ alloc "A0" "irqfd" "kvm_kernel_irqfd"
          ~fields:[ ("data", cint 0) ] ~func:"kvm_irqfd_assign" ~line:300;
        list_add "A1" (g "irqfd_list") (reg "irqfd") ~func:"kvm_irqfd_assign"
          ~line:310;
        store "A2" (reg "irqfd" **-> "data") (cint 7)
          ~func:"kvm_irqfd_assign" ~line:315 ]
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "kvm0" ] "B" "ioctl_irqfd_deassign"
      [ list_first "B1" "victim" (g "irqfd_list")
          ~func:"kvm_irqfd_deassign" ~line:400;
        branch_if "B1_chk" (Is_null (reg "victim")) "B_ret"
          ~func:"kvm_irqfd_deassign" ~line:401;
        list_del "B1_del" (g "irqfd_list") (reg "victim")
          ~func:"kvm_irqfd_deassign" ~line:402;
        queue_work "B2" "irqfd_shutdown" ~arg:(reg "victim")
          ~func:"kvm_irqfd_deassign" ~line:403;
        return "B_ret" ~func:"kvm_irqfd_deassign" ~line:410 ]
  in
  let shutdown =
    Caselib.entry "irqfd_shutdown"
      [ free "K1" (reg "arg") ~func:"irqfd_shutdown" ~line:120 ]
  in
  Ksim.Program.group ~name:"fig9-irqfd"
    ~entries:[ shutdown ]
    ~globals:[ ("irqfd_list", Ksim.Value.List []) ]
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "fig9-irqfd";
    subsystem = "KVM";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "ioctl_kvm_run") ]
        ~symptom:"KASAN: use-after-free" ~location:"A2" ~subsystem:"KVM" () }

let bug : Bug.t =
  { id = "fig9";
    source = Bug.Figure "Figure 9";
    subsystem = "KVM";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi_loose;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper = None;
    max_interleavings = None;
    description =
      "Unfinished initialization races with a kfree performed by a \
       kworkerd shutdown work queued from a second system call.";
    case }
