lib/bugs/cve_2019_6974.ml: Aitia Bug Caselib Ksim
