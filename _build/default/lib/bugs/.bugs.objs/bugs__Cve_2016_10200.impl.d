lib/bugs/cve_2016_10200.ml: Aitia Bug Caselib Ksim
