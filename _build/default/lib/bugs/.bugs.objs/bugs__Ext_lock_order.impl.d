lib/bugs/ext_lock_order.ml: Aitia Bug Caselib Ksim
