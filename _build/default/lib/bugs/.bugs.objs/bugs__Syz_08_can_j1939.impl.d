lib/bugs/syz_08_can_j1939.ml: Aitia Bug Caselib Ksim
