lib/bugs/cve_2017_2636.ml: Aitia Bug Caselib Ksim String
