lib/bugs/syz_12_bluetooth_uaf.ml: Aitia Bug Caselib Ksim
