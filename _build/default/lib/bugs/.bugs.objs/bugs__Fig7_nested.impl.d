lib/bugs/fig7_nested.ml: Aitia Bug Caselib Ksim
