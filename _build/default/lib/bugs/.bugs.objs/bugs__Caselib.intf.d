lib/bugs/caselib.mli: Ksim Trace
