lib/bugs/syz_09_seccomp_leak.ml: Aitia Bug Caselib Ksim
