lib/bugs/cve_2019_11486.ml: Aitia Bug Caselib Ksim
