lib/bugs/cve_2017_2671.ml: Aitia Bug Caselib Ksim
