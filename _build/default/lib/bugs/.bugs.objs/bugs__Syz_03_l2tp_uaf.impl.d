lib/bugs/syz_03_l2tp_uaf.ml: Aitia Bug Caselib Ksim
