lib/bugs/bug.mli: Aitia Fmt
