lib/bugs/ext_irq_nic.ml: Aitia Bug Caselib Ksim
