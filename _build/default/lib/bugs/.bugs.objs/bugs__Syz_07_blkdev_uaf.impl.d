lib/bugs/syz_07_blkdev_uaf.ml: Aitia Bug Caselib Ksim
