lib/bugs/syz_04_kvm_irqfd.ml: Aitia Bug Caselib Ksim
