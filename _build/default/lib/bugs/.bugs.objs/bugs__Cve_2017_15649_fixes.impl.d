lib/bugs/cve_2017_15649_fixes.ml: Aitia Caselib Ksim
