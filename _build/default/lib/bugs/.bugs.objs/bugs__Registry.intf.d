lib/bugs/registry.mli: Bug
