lib/bugs/syz_05_rxrpc_uaf.ml: Aitia Bug Caselib Ksim
