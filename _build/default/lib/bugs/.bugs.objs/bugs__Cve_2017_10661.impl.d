lib/bugs/cve_2017_10661.ml: Aitia Bug Caselib Ksim
