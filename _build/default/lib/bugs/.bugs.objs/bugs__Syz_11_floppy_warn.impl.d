lib/bugs/syz_11_floppy_warn.ml: Aitia Bug Caselib Ksim
