lib/bugs/syz_06_bpf_gpf.ml: Aitia Bug Caselib Ksim
