lib/bugs/syz_01_l2tp_oob.ml: Aitia Bug Caselib Ksim
