lib/bugs/cve_2017_15649.ml: Aitia Bug Caselib Ksim
