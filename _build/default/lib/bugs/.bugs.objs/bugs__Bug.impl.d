lib/bugs/bug.ml: Aitia Fmt
