lib/bugs/fig9_irqfd.ml: Aitia Bug Caselib Ksim
