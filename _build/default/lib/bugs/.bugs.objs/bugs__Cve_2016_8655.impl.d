lib/bugs/cve_2016_8655.ml: Aitia Bug Caselib Ksim
