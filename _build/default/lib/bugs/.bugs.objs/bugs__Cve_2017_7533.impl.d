lib/bugs/cve_2017_7533.ml: Aitia Bug Caselib Ksim
