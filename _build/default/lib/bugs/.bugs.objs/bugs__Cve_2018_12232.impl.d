lib/bugs/cve_2018_12232.ml: Aitia Bug Caselib Ksim
