lib/bugs/fig1_nullderef.ml: Aitia Bug Caselib Ksim
