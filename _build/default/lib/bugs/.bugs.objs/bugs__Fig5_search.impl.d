lib/bugs/fig5_search.ml: Aitia Bug Caselib Ksim
