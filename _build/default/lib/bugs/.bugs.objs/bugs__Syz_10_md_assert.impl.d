lib/bugs/syz_10_md_assert.ml: Aitia Bug Caselib Ksim
