lib/bugs/syz_02_packet_assert.ml: Aitia Bug Caselib Ksim
