lib/bugs/fig4_single_syscall.ml: Aitia Bug Caselib Ksim
