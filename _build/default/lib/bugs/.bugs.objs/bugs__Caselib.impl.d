lib/bugs/caselib.ml: Fmt Ksim List String Trace
