(* The §2.1 fix study for CVE-2017-15649.

   The paper: "cooperative bug localization (e.g., Snorlax, Gist) will
   report an order violation in B17 => A12 only.  However, enforcing the
   order B17 => A12 is not a correct fix.  Even with such a fix, both
   threads still can execute fanout_link() concurrently (at A8 and B7),
   resulting in the corruption of global_list due to the insertion of a
   shared object twice."

   [wrong_fix_group] models that fix: thread B spin-waits until sk is on
   global_list before its check (enforcing B17 => A12) and then — as in
   the full Figure 2, where packet_do_bind() re-links at B7 — inserts sk
   itself.  The BUG_ON is gone; a double list_add corruption replaces it.

   [correct_fix_group] models the developers' actual fix: po->running
   and po->fanout accessed atomically (one lock around both critical
   regions), cutting the chain's head conjunction
   (A2 => B11) /\ (B2 => A6).  No schedule reproduces any failure. *)

open Ksim.Program.Build

let base_globals =
  [ ("po_running", Ksim.Value.Int 1); ("po_fanout", Ksim.Value.Null);
    ("sk_ptr", Ksim.Value.Null); ("global_list", Ksim.Value.List []) ]

let init =
  Caselib.syscall_thread ~resources:[ "sock7" ] "init" "socket"
    [ alloc "I1" "sk" "sock" ~func:"sk_alloc" ~line:120;
      store "I2" (g "sk_ptr") (reg "sk") ~func:"sk_alloc" ~line:121 ]

(* Thread A (fanout_add), optionally lock-protected. *)
let thread_a ~locked =
  let body =
    [ load "A2" "running" (g "po_running") ~func:"fanout_add" ~line:1402;
      branch_if "A2_chk" (Eq (reg "running", cint 0)) "A_out"
        ~func:"fanout_add" ~line:1402;
      alloc "A5" "match_" "packet_fanout" ~func:"fanout_add" ~line:1415;
      store "A6" (g "po_fanout") (reg "match_") ~func:"fanout_add" ~line:1420;
      load "A11" "sk" (g "sk_ptr") ~func:"fanout_link" ~line:1380;
      list_add "A12" (g "global_list") (reg "sk") ~func:"fanout_link"
        ~line:1382;
      nop "A_out" ~func:"fanout_add" ~line:1429 ]
  in
  let instrs =
    if locked then
      (lock "A_lock" "fanout_mutex" ~func:"fanout_add" ~line:1400 :: body)
      @ [ unlock "A_unlock" "fanout_mutex" ~func:"fanout_add" ~line:1430 ]
    else body
  in
  Caselib.syscall_thread ~resources:[ "sock7" ] "A" "setsockopt" instrs

(* Thread B (packet_do_bind), with the re-link of Figure 2's B7 and an
   optional spin-wait "fix" before the unlink check. *)
let thread_b ~locked ~spin_wait_fix =
  let unlink_check =
    (if spin_wait_fix then
       (* The "fix" a single-pattern tool suggests: force B17 => A12 by
          waiting until sk is on the list. *)
       [ load "B16" "sk" (g "sk_ptr") ~func:"fanout_unlink" ~line:1390;
         list_contains "B17w" "on_list" (g "global_list") (reg "sk")
           ~func:"fanout_unlink" ~line:1391;
         branch_if "B17w_spin" (Eq (reg "on_list", cint 0)) "B17w"
           ~func:"fanout_unlink" ~line:1391 ]
     else
       [ load "B16" "sk" (g "sk_ptr") ~func:"fanout_unlink" ~line:1390 ])
    @ [ list_contains "B17" "on_list2" (g "global_list") (reg "sk")
          ~func:"fanout_unlink" ~line:1392;
        bug_on "B17_bug" (Not (reg "on_list2")) ~func:"fanout_unlink"
          ~line:1392;
        list_del "B18" (g "global_list") (reg "sk") ~func:"fanout_unlink"
          ~line:1393 ]
  in
  let body =
    [ load "B2" "fanout" (g "po_fanout") ~func:"packet_do_bind" ~line:3001;
      branch_if "B2_chk" (Not (Is_null (reg "fanout"))) "B_out"
        ~func:"packet_do_bind" ~line:3001;
      store "B11" (g "po_running") (cint 0) ~func:"unregister_hook"
        ~line:2950;
      load "B12" "fanout2" (g "po_fanout") ~func:"unregister_hook" ~line:2952;
      branch_if "B12_chk" (Is_null (reg "fanout2")) "B_relink"
        ~func:"unregister_hook" ~line:2952 ]
    @ unlink_check
    @ [ (* Figure 2's B7: bind re-registers and re-links. *)
        nop "B_relink" ~func:"packet_do_bind" ~line:3010;
        load "B7_sk" "sk2" (g "sk_ptr") ~func:"fanout_link" ~line:1380;
        list_add "B7" (g "global_list") (reg "sk2") ~func:"fanout_link"
          ~line:1382;
        nop "B_out" ~func:"packet_do_bind" ~line:3020 ]
  in
  let instrs =
    if locked then
      (lock "B_lock" "fanout_mutex" ~func:"packet_do_bind" ~line:3000 :: body)
      @ [ unlock "B_unlock" "fanout_mutex" ~func:"packet_do_bind" ~line:3021 ]
    else body
  in
  Caselib.syscall_thread ~resources:[ "sock7" ] "B" "bind" instrs

(* The unfixed kernel with the full Figure 2 code (including B's
   re-link), where both the BUG_ON and the double-insertion lurk. *)
let unfixed_group =
  Ksim.Program.group ~name:"cve-2017-15649-full" ~globals:base_globals
    [ init; thread_a ~locked:false; thread_b ~locked:false ~spin_wait_fix:false ]

(* The wrong fix: only B17 => A12 is enforced. *)
let wrong_fix_group =
  Ksim.Program.group ~name:"cve-2017-15649-wrongfix" ~globals:base_globals
    [ init; thread_a ~locked:false; thread_b ~locked:false ~spin_wait_fix:true ]

(* The developers' fix: the correlated pair accessed atomically. *)
let correct_fix_group =
  Ksim.Program.group ~name:"cve-2017-15649-fixed" ~globals:base_globals
    ~locks:[ "fanout_mutex" ]
    [ init; thread_a ~locked:true; thread_b ~locked:true ~spin_wait_fix:false ]

let history_of group symptom location =
  Caselib.history ~group ~setup:[ "init" ] ~symptom ?location
    ~subsystem:"Packet socket" ()

let unfixed_case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-15649-full";
    subsystem = "Packet socket";
    group = unfixed_group;
    history =
      history_of unfixed_group "kernel BUG (BUG_ON)" (Some "B17_bug") }

let wrong_fix_case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-15649-wrongfix";
    subsystem = "Packet socket";
    group = wrong_fix_group;
    history =
      history_of wrong_fix_group "list corruption (CONFIG_DEBUG_LIST)"
        (Some "B7") }

let correct_fix_case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-15649-fixed";
    subsystem = "Packet socket";
    group = correct_fix_group;
    history =
      history_of correct_fix_group "kernel BUG (BUG_ON)" (Some "B17_bug") }
