(* CVE-2017-10661 — timerfd: concurrent might_cancel operations corrupt
   the cancel list.

   Two timerfd_settime() calls both observe might_cancel == 0 and both
   insert the same timer into the cancel list; CONFIG_DEBUG_LIST catches
   the double insertion:

     A (timerfd_settime)              B (timerfd_settime)
     A1  if (might_cancel) goto out   B1  if (might_cancel) goto out
     A3  might_cancel = 1             B3  might_cancel = 1
     A4  list_add(tfd, cancel_list)   B4  list_add(tfd, cancel_list)

   Chain: (B1 => A3) --> list corruption (the check-then-act atomicity
   violation on a single variable). *)

open Ksim.Program.Build

let counters = [ "timer_stat_arm"; "timer_stat_fire"; "hrtimer_stat" ]

let settime name pfx line0 =
  Caselib.syscall_thread ~resources:[ "tfd4" ] name "timerfd_settime"
    ([ load (pfx ^ "1") "mc" (g "might_cancel") ~func:"timerfd_setup_cancel"
         ~line:line0;
       branch_if (pfx ^ "1_chk") (Ne (reg "mc", cint 0)) (pfx ^ "_ret")
         ~func:"timerfd_setup_cancel" ~line:line0 ]
    @ Caselib.noise ~prefix:pfx ~counters ~iters:9
    @ [ store (pfx ^ "3") (g "might_cancel") (cint 1)
          ~func:"timerfd_setup_cancel" ~line:(line0 + 2);
        load (pfx ^ "4_ld") "tfd" (g "tfd_ptr") ~func:"timerfd_setup_cancel"
          ~line:(line0 + 3);
        list_add (pfx ^ "4") (g "cancel_list") (reg "tfd")
          ~func:"timerfd_setup_cancel" ~line:(line0 + 3);
        return (pfx ^ "_ret") ~func:"do_timerfd_settime" ~line:(line0 + 10) ])

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "tfd4" ] "init" "timerfd_create"
      [ alloc "I1" "tfd" "timerfd_ctx" ~func:"timerfd_create" ~line:390;
        store "I2" (g "tfd_ptr") (reg "tfd") ~func:"timerfd_create" ~line:391 ]
  in
  Ksim.Program.group ~name:"cve-2017-10661"
    ~globals:
      ([ ("might_cancel", Ksim.Value.Int 0); ("tfd_ptr", Ksim.Value.Null);
         ("cancel_list", Ksim.Value.List []) ]
      @ Caselib.noise_globals counters)
    [ init; settime "A" "A" 120; settime "B" "B" 120 ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-10661";
    subsystem = "Timer fd";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "poll") ]
        ~symptom:"list corruption (CONFIG_DEBUG_LIST)" ~location:"B4"
        ~subsystem:"Timer fd" () }

let bug : Bug.t =
  { id = "cve-2017-10661";
    source = Bug.Cve "CVE-2017-10661";
    subsystem = "Timer fd";
    bug_type = Bug.List_corruption;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = None;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 32.8; p_lifs_scheds = 99; p_interleavings = 1;
          p_ca_time = 336.1; p_ca_scheds = 266; p_chain_races = None };
    max_interleavings = None;
    description =
      "Two settime calls both pass the might_cancel check and insert the \
       same timerfd into the cancel list twice.";
    case }
