(* Figure 5 — the LIFS search-tree example.

   Thread A touches M1, M2, M3; thread B touches M1, M2 and — only when
   the race-steered control flow A1 => B1 makes it see M1 set — queues a
   kernel work item K whose K1 frees the object A3 is about to read:

     A1 store M1      B1 load M1            K1 kfree(obj)
     A2 store M2      B3 if (M1) queue K
     A3 load obj->f   B2 store M2

   If K1 => A3 then A3 fails (use-after-free).  LIFS reproduces it at
   interleaving count 1 by preempting A after A1 (search order 4 in the
   figure). *)

open Ksim.Program.Build

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "f0" ] "init" "open"
      [ alloc "I1" "o" "object" ~fields:[ ("f", cint 5) ] ~func:"setup"
          ~line:10;
        store "I2" (g "obj_ptr") (reg "o") ~func:"setup" ~line:11 ]
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "f0" ] "A" "syscall_a"
      [ store "A1" (g "m1") (cint 1) ~func:"sys_a" ~line:20;
        store "A2" (g "m2") (cint 1) ~func:"sys_a" ~line:21;
        load "A3" "p" (g "obj_ptr") ~func:"sys_a" ~line:22;
        load "A3_deref" "x" (reg "p" **-> "f") ~func:"sys_a" ~line:22 ]
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "f0" ] "B" "syscall_b"
      [ load "B1" "r1" (g "m1") ~func:"sys_b" ~line:30;
        branch_if "B1_chk" (Eq (reg "r1", cint 0)) "B2" ~func:"sys_b"
          ~line:31;
        load "B3_ld" "p" (g "obj_ptr") ~func:"sys_b" ~line:32;
        queue_work "B3" "work_k" ~arg:(reg "p") ~func:"sys_b" ~line:32;
        store "B2" (g "m2") (cint 2) ~func:"sys_b" ~line:33 ]
  in
  let work_k =
    Caselib.entry "work_k" [ free "K1" (reg "arg") ~func:"work_k" ~line:40 ]
  in
  Ksim.Program.group ~name:"fig5" ~entries:[ work_k ]
    ~globals:
      [ ("m1", Ksim.Value.Int 0); ("m2", Ksim.Value.Int 0);
        ("obj_ptr", Ksim.Value.Null) ]
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "fig5-search";
    subsystem = "example";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ]
        ~symptom:"KASAN: use-after-free" ~location:"A3_deref"
        ~subsystem:"example" () }

let bug : Bug.t =
  { id = "fig5";
    source = Bug.Figure "Figure 5";
    subsystem = "example";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper = None;
    max_interleavings = None;
    description =
      "Three-context search example: a race-steered control flow invokes \
       a kernel work item whose kfree races with a subsequent read.";
    case }
