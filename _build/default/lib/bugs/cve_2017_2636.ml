(* CVE-2017-2636 — n_hdlc TTY driver: double free of tbuf.

   n_hdlc_release() and the flush path both take the same tx buffer off
   the ldisc and free it; the check-then-clear of n_hdlc->tbuf is not
   atomic:

     A (ioctl flush)                 B (close/release)
     A1  b = tbuf                    B1  b = tbuf
     A1c if (!b) return              B1c if (!b) return
     A3  tbuf = NULL                 B2  tbuf = NULL
     A4  kfree(b)                    B3  kfree(b)        <- double free

   Chain: (A1 => B2) --> double free (check-then-act on one variable). *)

open Ksim.Program.Build

let counters = [ "n_hdlc_stat_tx"; "n_hdlc_stat_rx"; "tty_stat_flip" ]

let flusher name pfx func =
  Caselib.syscall_thread ~resources:[ "hdlc5" ] name (String.lowercase_ascii func)
    ([ load (pfx ^ "1") "b" (g "tbuf") ~func ~line:440;
       branch_if (pfx ^ "1_chk") (Is_null (reg "b")) (pfx ^ "_ret") ~func
         ~line:441 ]
    @ Caselib.noise ~prefix:pfx ~counters ~iters:9
    @ [ store (pfx ^ "2") (g "tbuf") cnull ~func ~line:445;
        free (pfx ^ "3") (reg "b") ~func ~line:446;
        return (pfx ^ "_ret") ~func ~line:450 ])

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "hdlc5" ] "init" "open"
      [ alloc "I1" "b" "n_hdlc_buf" ~func:"n_hdlc_alloc" ~line:400;
        store "I2" (g "tbuf") (reg "b") ~func:"n_hdlc_alloc" ~line:401 ]
  in
  Ksim.Program.group ~name:"cve-2017-2636"
    ~globals:([ ("tbuf", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; flusher "A" "A" "n_hdlc_tty_flush"; flusher "B" "B" "n_hdlc_tty_close" ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-2636";
    subsystem = "TTY";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "write") ]
        ~symptom:"KASAN: double-free" ~location:"B3" ~subsystem:"TTY" () }

let bug : Bug.t =
  { id = "cve-2017-2636";
    source = Bug.Cve "CVE-2017-2636";
    subsystem = "TTY";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = None;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 34.3; p_lifs_scheds = 197; p_interleavings = 1;
          p_ca_time = 270.0; p_ca_scheds = 215; p_chain_races = None };
    max_interleavings = None;
    description =
      "Flush and release both observe a non-NULL tbuf and free it; the \
       check-then-clear is not atomic.";
    case }
