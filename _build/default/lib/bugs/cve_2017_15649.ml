(* CVE-2017-15649 — packet socket fanout (Figure 2).

   setsockopt(PACKET_FANOUT) and bind() race on the semantically
   correlated pair po->fanout / po->running:

     Thread A (fanout_add)            Thread B (packet_do_bind)
     A2  if (!po->running) return;    B2   if (po->fanout) return;
     A5  match = kmalloc();           B11  po->running = 0;
     A6  po->fanout = match;          B12  if (po->fanout)
     A12 list_add(sk, &global_list);  B17    BUG_ON(!list_contains(sk));

   Failure-causing sequence (Figure 6): B2 => A2 => A6 => B11 => B12 =>
   B17; the BUG_ON fires because sk was never inserted.  Expected chain:
   (A2 => B11) /\ (B2 => A6) --> (A6 => B12) --> (B17 => A12) --> BUG_ON.
   LIFS needs interleaving count 2 (Table 2). *)

open Ksim.Program.Build

let counters = [ "pkt_stats_rx"; "pkt_stats_tx"; "sock_refcnt_stat" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "sock7" ] "init" "socket"
      ([ alloc "I1" "sk" "sock" ~fields:[ ("state", cint 1) ]
           ~func:"sk_alloc" ~line:120;
         store "I2" (g "sk_ptr") (reg "sk") ~func:"sk_alloc" ~line:121;
         store "I3" (g "po_running") (cint 1) ~func:"packet_create" ~line:130;
         store "I4" (g "po_fanout") cnull ~func:"packet_create" ~line:131 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"pkt_cpustats" ~slots:12)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "sock7" ] "A" "setsockopt"
      (Caselib.array_noise ~prefix:"A" ~buf:"pkt_cpustats" ~slots:12 ~iters:24
      @ [ load "A2" "running" (g "po_running") ~func:"fanout_add" ~line:1402;
         branch_if "A2_chk" (Eq (reg "running", cint 0)) "A_ret"
           ~func:"fanout_add" ~line:1402;
         alloc "A5" "match_" "packet_fanout" ~func:"fanout_add" ~line:1415;
         store "A6" (g "po_fanout") (reg "match_") ~func:"fanout_add"
           ~line:1420 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:6
      @ [ load "A11" "sk" (g "sk_ptr") ~func:"fanout_link" ~line:1380;
          list_add "A12" (g "global_list") (reg "sk") ~func:"fanout_link"
            ~line:1382;
          return "A_ret" ~func:"fanout_add" ~line:1430 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "sock7" ] "B" "bind"
      (Caselib.array_noise ~prefix:"B" ~buf:"pkt_cpustats" ~slots:12 ~iters:24
      @ [ load "B2" "fanout" (g "po_fanout") ~func:"packet_do_bind" ~line:3001;
         branch_if "B2_chk" (Not (Is_null (reg "fanout"))) "B_ret"
           ~func:"packet_do_bind" ~line:3001 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:6
      @ [ store "B11" (g "po_running") (cint 0) ~func:"unregister_hook"
            ~line:2950;
          load "B12" "fanout2" (g "po_fanout") ~func:"unregister_hook"
            ~line:2952;
          branch_if "B12_chk" (Is_null (reg "fanout2")) "B_ret"
            ~func:"unregister_hook" ~line:2952;
          load "B16" "sk" (g "sk_ptr") ~func:"fanout_unlink" ~line:1390;
          list_contains "B17" "on_list" (g "global_list") (reg "sk")
            ~func:"fanout_unlink" ~line:1392;
          bug_on "B17_bug" (Not (reg "on_list")) ~func:"fanout_unlink"
            ~line:1392;
          return "B_ret" ~func:"packet_do_bind" ~line:3020 ])
  in
  Ksim.Program.group ~name:"cve-2017-15649"
    ~globals:
      ([ ("po_running", Ksim.Value.Int 0); ("po_fanout", Ksim.Value.Null);
         ("sk_ptr", Ksim.Value.Null); ("global_list", Ksim.Value.List []);
         ("pkt_cpustats", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-15649";
    subsystem = "Packet socket";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ]
        ~extra:[ ("W", "mmap"); ("X", "sendto") ]
        ~symptom:"kernel BUG (BUG_ON)" ~location:"B17_bug"
        ~subsystem:"Packet socket" () }

let bug : Bug.t =
  { id = "cve-2017-15649";
    source = Bug.Cve "CVE-2017-15649";
    subsystem = "Packet socket";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 2; exp_chain_races = Some 4;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 88.0; p_lifs_scheds = 1052; p_interleavings = 2;
          p_ca_time = 337.9; p_ca_scheds = 257; p_chain_races = None };
    max_interleavings = None;
    description =
      "Multi-variable atomicity violation on po->running / po->fanout \
       with a race-steered control flow into fanout_unlink's BUG_ON.";
    case }
