(* Extension case — the hardware-IRQ future work of the paper's §4.6:
   "we believe that AITIA is able to diagnose such concurrent bugs if
   the AITIA hypervisor injects an IRQ through the VT-x mechanism as is
   done for system calls."

   A NIC driver's close path frees the receive buffer while the RX
   interrupt handler — enabled earlier by the open path — can still fire
   and write into it.  The handler is a true hardware-IRQ context: once
   injected it runs to completion (the controller refuses to preempt
   it).

     B (open/up)                A (close/down)          RX IRQ handler
     B1  rxbuf_ptr = buf        A1  b = rxbuf_ptr       I1  b = rxbuf_ptr
     B2  enable_irq(rx)         A1c if (!b) return      I1c if (!b) return
                                A2  rxbuf_ptr = NULL    I2  b->len = n  <- UAF
                                A3  kfree(b)

   Chain: (B1 => A1) --> (A3 => I2) --> use-after-free, across the
   hardware-interrupt boundary. *)

open Ksim.Program.Build

let counters = [ "nic_stat_rx"; "nic_stat_irqs" ]

let group =
  let thread_b =
    Caselib.syscall_thread ~resources:[ "eth0" ] "B" "ifup"
      (Caselib.noise ~prefix:"B" ~counters ~iters:6
      @ [ alloc "B0" "buf" "rx_ring" ~fields:[ ("len", cint 0) ]
            ~func:"nic_open" ~line:510;
          store "B1" (g "rxbuf_ptr") (reg "buf") ~func:"nic_open" ~line:515;
          enable_irq "B2" "nic_rx_irq" ~func:"nic_open" ~line:520 ])
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "eth0" ] "A" "ifdown"
      (Caselib.noise ~prefix:"A" ~counters ~iters:6
      @ [ load "A1" "b" (g "rxbuf_ptr") ~func:"nic_close" ~line:610;
          branch_if "A1_chk" (Is_null (reg "b")) "A_ret" ~func:"nic_close"
            ~line:611;
          store "A2" (g "rxbuf_ptr") cnull ~func:"nic_close" ~line:615;
          free "A3" (reg "b") ~func:"nic_close" ~line:620;
          return "A_ret" ~func:"nic_close" ~line:630 ])
  in
  let rx_irq =
    Caselib.entry "nic_rx_irq"
      [ load "I1" "b" (g "rxbuf_ptr") ~func:"nic_rx_interrupt" ~line:700;
        branch_if "I1_chk" (Is_null (reg "b")) "I_ret"
          ~func:"nic_rx_interrupt" ~line:701;
        store "I2" (reg "b" **-> "len") (cint 64) ~func:"nic_rx_interrupt"
          ~line:705;
        return "I_ret" ~func:"nic_rx_interrupt" ~line:710 ]
  in
  Ksim.Program.group ~name:"ext-irq-nic" ~entries:[ rx_irq ]
    ~globals:([ ("rxbuf_ptr", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ thread_b; thread_a ]

let case () : Aitia.Diagnose.case =
  { case_name = "ext-irq-nic";
    subsystem = "Network driver";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "read") ]
        ~symptom:"KASAN: use-after-free" ~location:"I2"
        ~subsystem:"Network driver" () }

let bug : Bug.t =
  { id = "ext-irq";
    source = Bug.Extension "hardware IRQ contexts (paper Sec. 4.6 future work)";
    subsystem = "Network driver";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper = None;
    max_interleavings = None;
    description =
      "ifdown frees the RX ring while the enabled NIC interrupt handler \
       can still fire and write into it (hardware-IRQ context).";
    case }
