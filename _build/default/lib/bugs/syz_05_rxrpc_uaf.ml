(* Syzkaller bug #5 — "KASAN: use-after-free Read in rxrpc_queue_local"
   (RxRPC, single variable, RCU callback).

   Socket teardown hands the local endpoint to an RCU callback for
   freeing while the event path still queues work on it.  The chain is a
   single race: the pointer-read race is benign (flipping it merely
   turns the use-after-free into an equivalent NULL dereference), so
   Causality Analysis reports exactly one root cause:

     A (rxrpc event)                 B (release)          rcu callback
     A1  local = local_ptr           B1  l = local_ptr
     A2  local->usage ...  <- UAF    B2  local_ptr = NULL
                                     B3  call_rcu(free)   K1 kfree(l)

   Chain: (K1 => A2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "rxrpc_stat_calls"; "rxrpc_stat_pkts" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "rx5" ] "init" "socket"
      ([ alloc "I1" "l" "rxrpc_local" ~fields:[ ("usage", cint 1) ]
          ~func:"rxrpc_lookup_local" ~line:250;
        store "I2" (g "local_ptr") (reg "l") ~func:"rxrpc_lookup_local"
          ~line:251 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"rxrpc_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "rx5" ] "A" "sendmsg"
      (Caselib.array_noise ~prefix:"A" ~buf:"rxrpc_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "local" (g "local_ptr") ~func:"rxrpc_queue_local"
           ~line:90 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:6
      @ [ load "A2" "u" (reg "local" **-> "usage") ~func:"rxrpc_queue_local"
            ~line:95 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "rx5" ] "B" "close"
      (Caselib.array_noise ~prefix:"B" ~buf:"rxrpc_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "l" (g "local_ptr") ~func:"rxrpc_release" ~line:900;
         branch_if "B1_chk" (Is_null (reg "l")) "B_ret" ~func:"rxrpc_release"
           ~line:901 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:6
      @ [ store "B2" (g "local_ptr") cnull ~func:"rxrpc_release" ~line:905;
          call_rcu "B3" "rxrpc_local_rcu" ~arg:(reg "l")
            ~func:"rxrpc_release" ~line:906;
          return "B_ret" ~func:"rxrpc_release" ~line:910 ])
  in
  let rcu_cb =
    Caselib.entry "rxrpc_local_rcu"
      [ free "K1" (reg "arg") ~func:"rxrpc_local_rcu" ~line:120 ]
  in
  Ksim.Program.group ~name:"syz-05-rxrpc-uaf" ~entries:[ rcu_cb ]
    ~globals:([ ("rxrpc_cpustats", Ksim.Value.Null); ("local_ptr", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-05-rxrpc-uaf";
    subsystem = "RxRPC";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "bind") ]
        ~symptom:"KASAN: use-after-free" ~location:"A2" ~subsystem:"RxRPC" () }

let bug : Bug.t =
  { id = "syz-05";
    source =
      Bug.Syzkaller
        { index = 5; title = "KASAN: use-after-free Read in rxrpc_queue_local" };
    subsystem = "RxRPC";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 1;
        exp_ambiguous = false; exp_kthread = true };
    paper =
      Some
        { p_lifs_time = 45.7; p_lifs_scheds = 2; p_interleavings = 1;
          p_ca_time = 930.4; p_ca_scheds = 405; p_chain_races = Some 1 };
    max_interleavings = None;
    description =
      "Release path hands the local endpoint to an RCU callback whose \
       kfree races with the event path's usage read; the pointer race is \
       benign (it only changes the crash flavour).";
    case }
