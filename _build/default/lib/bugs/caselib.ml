(* Shared machinery for building bug cases: synthetic ftrace histories
   around a program group, and the benign-race "noise" code that makes
   failed executions carry the realistic volume of memory-accessing
   instructions and benign races reported in §5.2. *)

open Ksim.Program.Build

(* --- synthetic ftrace histories --------------------------------------- *)

(* Build an execution history in which [setup] syscalls run sequentially,
   then the group's top-level threads run concurrently, background
   threads are invoked from within the concurrent window, and the crash
   report arrives last.  [extra] adds unrelated sequential episodes
   before the concurrent window so the slicer has something to discard. *)
let history ~(group : Ksim.Program.group) ?(setup : string list = [])
    ?(extra : (string * string) list = []) ~symptom ?location ~subsystem ()
    : Trace.History.t =
  let events = ref [] in
  let push e = events := e :: !events in
  let t = ref 0.0 in
  let tick () =
    t := !t +. 0.05;
    !t
  in
  (* Unrelated earlier activity. *)
  List.iter
    (fun (thread, call) ->
      push { Trace.Event.time = tick ();
             kind = Trace.Event.Syscall_enter { call; thread; resources = [] } };
      push { Trace.Event.time = tick ();
             kind = Trace.Event.Syscall_exit { call; thread } })
    extra;
  (* Sequential setup calls (e.g. open()/socket()). *)
  let spec_of name =
    List.find_opt
      (fun (s : Ksim.Program.thread_spec) -> String.equal s.spec_name name)
      group.Ksim.Program.threads
  in
  List.iter
    (fun name ->
      match spec_of name with
      | None -> ()
      | Some spec ->
        let call =
          match spec.context with
          | Ksim.Program.Syscall { call; _ } -> call
          | _ -> name
        in
        push { Trace.Event.time = tick ();
               kind = Trace.Event.Syscall_enter
                   { call; thread = name; resources = spec.resources } };
        push { Trace.Event.time = tick ();
               kind = Trace.Event.Syscall_exit { call; thread = name } })
    setup;
  (* The concurrent window. *)
  let start = tick () in
  let concurrent =
    List.filter
      (fun (s : Ksim.Program.thread_spec) ->
        not (List.mem s.spec_name setup))
      group.Ksim.Program.threads
  in
  List.iteri
    (fun i (spec : Ksim.Program.thread_spec) ->
      let call =
        match spec.context with
        | Ksim.Program.Syscall { call; _ } -> call
        | _ -> spec.spec_name
      in
      push { Trace.Event.time = start +. (0.001 *. float_of_int i);
             kind = Trace.Event.Syscall_enter
                 { call; thread = spec.spec_name;
                   resources = spec.resources } })
    concurrent;
  (* Background-thread invocations observed inside the window. *)
  List.iter
    (fun (entry, _) ->
      push { Trace.Event.time = start +. 0.01;
             kind = Trace.Event.Kthread_invoked
                 { entry; source = "syscall"; context = Ksim.Program.Kworker } })
    group.Ksim.Program.entries;
  let stop = start +. 0.5 in
  List.iter
    (fun (spec : Ksim.Program.thread_spec) ->
      let call =
        match spec.context with
        | Ksim.Program.Syscall { call; _ } -> call
        | _ -> spec.spec_name
      in
      push { Trace.Event.time = stop;
             kind = Trace.Event.Syscall_exit
                 { call; thread = spec.spec_name } })
    concurrent;
  let crash =
    { Trace.Crash.symptom; location; subsystem; report_time = stop +. 0.1 }
  in
  Trace.History.make ~events:!events ~crash

(* --- benign-race noise ------------------------------------------------- *)

(* Kernel code is full of intentionally racy bookkeeping: statistics
   counters, cache hit counters, flag bits nobody synchronizes.  These
   are the benign races Causality Analysis must rule out (§2.3).  Each
   call emits a loop of [iters] racy counter updates over the shared
   [counters], prefixed with [prefix] to keep labels unique per thread. *)
let noise ~prefix ~counters ~iters =
  let l s = prefix ^ "_" ^ s in
  [ assign (l "n_init") "noise_i" (cint 0);
    nop (l "n_top");
  ]
  @ List.concat_map
      (fun counter ->
        [ load (l ("n_rd_" ^ counter)) "noise_v" (g counter)
            ~func:"stats_update" ~line:0;
          store (l ("n_wr_" ^ counter)) (g counter)
            (Add (reg "noise_v", cint 1))
            ~func:"stats_update" ~line:0 ])
      counters
  @ [ assign (l "n_inc") "noise_i" (Add (reg "noise_i", cint 1));
      branch_if (l "n_loop") (Lt (reg "noise_i", cint iters)) (l "n_top");
    ]

(* Globals declaring the shared statistics counters. *)
let noise_globals counters =
  List.map (fun c -> (c, Ksim.Value.Int 0)) counters

(* Register-only filler: models the code distance separating loosely
   correlated objects (different functions / subsystems, §2.2) without
   adding memory accesses.  MUVI's windowed co-occurrence never sees
   across it; LIFS and Causality Analysis are unaffected. *)
let filler ~prefix n =
  List.init n (fun i ->
      assign (Fmt.str "%s_fill%d" prefix i) "scratch" (cint i))

(* Heavier benign traffic: a per-CPU-statistics ring.  Each call walks a
   shared [slots]-entry array [iters] times doing racy read-increment-
   write updates — every slot is a distinct racy location, so big
   subsystems contribute the large benign-race populations the paper
   reports (§5.2: 108.4 races on average in a failed execution).  The
   array is published in global [buf] by [array_noise_setup]. *)
let array_noise ~prefix ~buf ~slots ~iters =
  let l s = prefix ^ "_s_" ^ s in
  [ load (l "buf") "sn_buf" (g buf) ~func:"cpu_stats_update" ~line:0;
    assign (l "idx") "sn_idx" (cint 0);
    assign (l "iter") "sn_iter" (cint 0);
    nop (l "top");
    load (l "rd") "sn_v" (reg "sn_buf" **@ reg "sn_idx")
      ~func:"cpu_stats_update" ~line:1;
    store (l "wr") (reg "sn_buf" **@ reg "sn_idx")
      (Add (reg "sn_v", cint 1))
      ~func:"cpu_stats_update" ~line:2;
    assign (l "inc") "sn_idx" (Add (reg "sn_idx", cint 1));
    branch_if (l "wrap_chk") (Lt (reg "sn_idx", cint slots)) (l "cont");
    assign (l "wrap") "sn_idx" (cint 0);
    nop (l "cont");
    assign (l "iter_inc") "sn_iter" (Add (reg "sn_iter", cint 1));
    branch_if (l "loop") (Lt (reg "sn_iter", cint iters)) (l "top") ]

(* Instructions allocating and publishing the statistics ring; belongs
   in a setup (prologue) thread. *)
let array_noise_setup ~prefix ~buf ~slots =
  [ alloc (prefix ^ "_sb_alloc") "sn_new" "percpu_stats" ~slots
      ~func:"alloc_percpu" ~line:0;
    store (prefix ^ "_sb_pub") (g buf) (reg "sn_new") ~func:"alloc_percpu"
      ~line:1 ]

(* --- thread-spec helpers ----------------------------------------------- *)

let syscall_thread ?(resources = []) name call instrs =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call; sysno = 0 };
    program = Ksim.Program.make ~name:call instrs;
    resources }

let entry name instrs = (name, Ksim.Program.make ~name instrs)
