(* Syzkaller bug #10 — "md: warning caused by a race between concurrent
   md_ioctl()s" (Software RAID, single variable, kworkerd).  Unfixed at
   evaluation time; the fix was submitted before the report.

   Two ioctls and the md flush worker step the flush state machine on a
   single flag; an interleaved sequence drives it into the state the
   ioctl path asserts against:

     A (md_ioctl)                    B (md_ioctl)            kworker
     A1  flush_state = 1             B1  if (state != 1) ret
     A2  s = flush_state             B2  flush_state = 2     K1 if (!=2) ret
     A3  BUG_ON(s == 3)              B3  queue_work(flush)   K2 flush_state=3

   Chain: (A1 => B1) --> (K2 => A2) --> assertion. *)

open Ksim.Program.Build

let counters = [ "md_stat_writes"; "md_stat_flushes"; "raid_stat_stripes" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "md0" ] "A" "ioctl_md_set"
      ([ store "A1" (g "flush_state") (cint 1) ~func:"md_ioctl" ~line:7520 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:7
      @ [ load "A2" "s" (g "flush_state") ~func:"md_ioctl" ~line:7540;
          bug_on "A3" (Eq (reg "s", cint 3)) ~func:"md_ioctl" ~line:7541 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "md0" ] "B" "ioctl_md_flush"
      ([ load "B1" "s" (g "flush_state") ~func:"md_ioctl" ~line:7560;
         branch_if "B1_chk" (Ne (reg "s", cint 1)) "B_ret" ~func:"md_ioctl"
           ~line:7561 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:7
      @ [ store "B2" (g "flush_state") (cint 2) ~func:"md_flush_request"
            ~line:580;
          queue_work "B3" "md_submit_flush" ~func:"md_flush_request"
            ~line:585;
          return "B_ret" ~func:"md_ioctl" ~line:7570 ])
  in
  let flush_worker =
    Caselib.entry "md_submit_flush"
      [ load "K1" "s" (g "flush_state") ~func:"md_submit_flush_data"
          ~line:620;
        branch_if "K1_chk" (Ne (reg "s", cint 2)) "K_ret"
          ~func:"md_submit_flush_data" ~line:621;
        store "K2" (g "flush_state") (cint 3) ~func:"md_submit_flush_data"
          ~line:625;
        return "K_ret" ~func:"md_submit_flush_data" ~line:630 ]
  in
  Ksim.Program.group ~name:"syz-10-md-assert" ~entries:[ flush_worker ]
    ~globals:([ ("flush_state", Ksim.Value.Int 0) ] @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-10-md-assert";
    subsystem = "Software RAID";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "fsync") ]
        ~symptom:"kernel BUG (BUG_ON)" ~location:"A3"
        ~subsystem:"Software RAID" () }

let bug : Bug.t =
  { id = "syz-10";
    source =
      Bug.Syzkaller
        { index = 10;
          title = "md: fix a warning caused by a race between concurrent md_ioctl()s" };
    subsystem = "Software RAID";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper =
      Some
        { p_lifs_time = 70.8; p_lifs_scheds = 101; p_interleavings = 1;
          p_ca_time = 2365.1; p_ca_scheds = 1032; p_chain_races = Some 4 };
    max_interleavings = None;
    description =
      "The flush state machine is stepped by two ioctls and the md flush \
       worker; an interleaving drives it into the asserted-against state.";
    case }
