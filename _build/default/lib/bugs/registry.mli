(** Lookup for the modeled bug corpus. *)

val figures : Bug.t list
(** The paper's worked examples: Figures 1, 5, 7, 9. *)

val cves : Bug.t list
(** The 10 CVEs of Table 2, in table order. *)

val syzkaller : Bug.t list
(** The 12 Syzkaller failures of Table 3, in table order. *)

val extensions : Bug.t list
(** Cases beyond the paper's evaluation: hardware-IRQ contexts (its
    §4.6 future work) and critical-section-order bugs. *)

val all : Bug.t list

val find : string -> Bug.t option
val ids : unit -> string list
