(** Shared machinery for building bug cases: synthetic ftrace histories
    and the benign-race populations that make failed executions carry
    realistic volumes of memory accesses and benign races (§5.2). *)

val history :
  group:Ksim.Program.group ->
  ?setup:string list ->
  ?extra:(string * string) list ->
  symptom:string ->
  ?location:string ->
  subsystem:string ->
  unit ->
  Trace.History.t
(** An execution history: [setup] syscalls run sequentially, the group's
    remaining threads run concurrently, background threads are invoked
    inside the window, and the crash report arrives last.  [extra] adds
    unrelated sequential episodes for the slicer to discard. *)

val noise :
  prefix:string -> counters:string list -> iters:int ->
  Ksim.Program.labeled list
(** A loop of racy statistics-counter updates — the benign races
    Causality Analysis must rule out (§2.3).  Labels are prefixed to
    stay unique per thread. *)

val noise_globals : string list -> (string * Ksim.Value.t) list

val filler : prefix:string -> int -> Ksim.Program.labeled list
(** Register-only instructions modeling the code distance that separates
    loosely correlated objects (§2.2); invisible to race analysis. *)

val array_noise :
  prefix:string -> buf:string -> slots:int -> iters:int ->
  Ksim.Program.labeled list
(** Heavier benign traffic: racy updates walking a shared per-CPU
    statistics ring — every slot is a distinct racy location. *)

val array_noise_setup :
  prefix:string -> buf:string -> slots:int -> Ksim.Program.labeled list
(** Allocate and publish the statistics ring; belongs in a setup
    (prologue) thread. *)

val syscall_thread :
  ?resources:string list -> string -> string -> Ksim.Program.labeled list ->
  Ksim.Program.thread_spec
(** [syscall_thread name call instrs]. *)

val entry : string -> Ksim.Program.labeled list -> string * Ksim.Program.t
(** A background-thread entry point. *)
