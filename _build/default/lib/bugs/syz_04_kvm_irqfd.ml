(* Syzkaller bug #4 — "KASAN: use-after-free Write in
   irq_bypass_register_consumer" (KVM, loosely correlated, kworkerd).

   The full model behind Figure 9's case study: irqfd assignment inserts
   the consumer into the bypass list and keeps initializing it, while a
   concurrent deassign hands the irqfd to the shutdown work whose kfree
   lands in the middle of the initialization.  The list lives in the irq
   bypass layer, the irqfd in KVM — loosely correlated objects — and the
   freeing instruction runs in a kernel background thread.

   Chain: (A1 => B1) --> (K1 => A2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "kvm_stat_irqfd"; "kvm_stat_bypass"; "wq_stat_items" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "kvm4" ] "A" "ioctl_irqfd_assign"
      (Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ alloc "A0" "irqfd" "kvm_kernel_irqfd"
            ~fields:[ ("consumer", cint 0) ] ~func:"kvm_irqfd_assign"
            ~line:300;
          list_add "A1" (g "bypass_list") (reg "irqfd")
            ~func:"irq_bypass_register_consumer" ~line:212;
          store "A2" (reg "irqfd" **-> "consumer") (cint 1)
            ~func:"irq_bypass_register_consumer" ~line:220 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "kvm4" ] "B" "ioctl_irqfd_deassign"
      (Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ list_first "B1" "victim" (g "bypass_list")
            ~func:"kvm_irqfd_deassign" ~line:400;
          branch_if "B1_chk" (Is_null (reg "victim")) "B_ret"
            ~func:"kvm_irqfd_deassign" ~line:401;
          list_del "B1_del" (g "bypass_list") (reg "victim")
            ~func:"kvm_irqfd_deassign" ~line:402;
          queue_work "B2" "irqfd_shutdown" ~arg:(reg "victim")
            ~func:"kvm_irqfd_deassign" ~line:403;
          return "B_ret" ~func:"kvm_irqfd_deassign" ~line:410 ])
  in
  let shutdown =
    Caselib.entry "irqfd_shutdown"
      [ free "K1" (reg "arg") ~func:"irqfd_shutdown" ~line:120 ]
  in
  Ksim.Program.group ~name:"syz-04-kvm-irqfd" ~entries:[ shutdown ]
    ~globals:([ ("bypass_list", Ksim.Value.List []) ] @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-04-kvm-irqfd";
    subsystem = "KVM";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "ioctl_kvm_run") ]
        ~symptom:"KASAN: use-after-free" ~location:"A2" ~subsystem:"KVM" () }

let bug : Bug.t =
  { id = "syz-04";
    source =
      Bug.Syzkaller
        { index = 4;
          title = "KASAN: use-after-free Write in irq_bypass_register_consumer" };
    subsystem = "KVM";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi_loose;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = true };
    paper =
      Some
        { p_lifs_time = 152.1; p_lifs_scheds = 503; p_interleavings = 1;
          p_ca_time = 189.6; p_ca_scheds = 138; p_chain_races = Some 2 };
    max_interleavings = None;
    description =
      "Deassign queues the shutdown work while assign is still \
       initializing the consumer; the kworkerd kfree races with the \
       initialization store.";
    case }
