(* CVE-2017-2671 — IPv4 ping sockets: ping_unhash() vs connect() GPF.

   ping_unhash poisons the socket's hash linkage while a concurrent
   connect still believes the socket is hashed and follows the pointer:

     A (disconnect/unhash)           B (connect)
     A1  ping_ptr = LIST_POISON      B1  if (!sk_hashed) return
     A2  sk_hashed = 0               B2  p = ping_ptr
                                     B3  p->daddr = addr   <- GPF

   Chain: (B1 => A2) --> (A1 => B2) --> general protection fault. *)

open Ksim.Program.Build

let counters = [ "icmp_stat_out"; "icmp_stat_in" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "ping2" ] "init" "socket"
      [ alloc "I1" "grp" "ping_group" ~fields:[ ("daddr", cint 0) ]
          ~func:"ping_hash" ~line:200;
        store "I2" (g "ping_ptr") (reg "grp") ~func:"ping_hash" ~line:201;
        store "I3" (g "sk_hashed") (cint 1) ~func:"ping_hash" ~line:202 ]
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "ping2" ] "A" "disconnect"
      (Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ store "A1" (g "ping_ptr") (Const (Ksim.Value.Int 0xdead))
            ~func:"ping_unhash" ~line:310;
          store "A2" (g "sk_hashed") (cint 0) ~func:"ping_unhash" ~line:311 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "ping2" ] "B" "connect"
      ([ load "B1" "hashed" (g "sk_hashed") ~func:"ping_v4_connect" ~line:840;
         branch_if "B1_chk" (Eq (reg "hashed", cint 0)) "B_ret"
           ~func:"ping_v4_connect" ~line:841 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ load "B2" "p" (g "ping_ptr") ~func:"ping_v4_connect" ~line:850;
          store "B3" (reg "p" **-> "daddr") (cint 7) ~func:"ping_v4_connect"
            ~line:851;
          return "B_ret" ~func:"ping_v4_connect" ~line:860 ])
  in
  Ksim.Program.group ~name:"cve-2017-2671"
    ~globals:
      ([ ("ping_ptr", Ksim.Value.Null); ("sk_hashed", Ksim.Value.Int 0) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2017-2671";
    subsystem = "IPV4";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "sendmsg") ]
        ~symptom:"general protection fault" ~location:"B3" ~subsystem:"IPV4"
        () }

let bug : Bug.t =
  { id = "cve-2017-2671";
    source = Bug.Cve "CVE-2017-2671";
    subsystem = "IPV4";
    bug_type = Bug.General_protection_fault;
    variables = Bug.Multi;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 33.2; p_lifs_scheds = 130; p_interleavings = 1;
          p_ca_time = 195.3; p_ca_scheds = 159; p_chain_races = None };
    max_interleavings = None;
    description =
      "ping_unhash poisons the hash pointer between connect's hashed \
       check and its dereference.";
    case }
