(* CVE-2019-6974 — KVM: kvm_ioctl_create_device() UAF.

   The device fd is installed into the fd table before the kvm reference
   is taken; a concurrent close() of that fd releases the device and
   drops the last kvm reference, so the deferred kvm_get_kvm touches a
   freed kvm.  The racing objects are loosely correlated: the fd table
   lives in VFS, the kvm object in the hypervisor layer (§2.2).

     A (KVM_CREATE_DEVICE)           B (close)
     A1  fd_table = dev   (publish)  B1  dev = fd_table; if (!dev) ret
     A2  kvm->users++     (late)     B2  fd_table = NULL
                                     B3  r = --kvm->users
                                     B4  if (r == 0)
                                     B5      kfree(kvm)

   Chain: (A1 => B1) --> (B5 => A2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "kvm_stat_exits"; "kvm_stat_irqs"; "vfs_stat_opens" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "kvm0" ] "init" "open"
      ([ alloc "I1" "kvm" "kvm" ~fields:[ ("users", cint 1) ]
          ~func:"kvm_create_vm" ~line:700;
        store "I2" (g "kvm_ptr") (reg "kvm") ~func:"kvm_create_vm" ~line:701;
        store "I3" (g "fd_table") cnull ~func:"kvm_create_vm" ~line:702 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"kvm_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "kvm0" ] "A" "ioctl_create_device"
      (Caselib.array_noise ~prefix:"A" ~buf:"kvm_cpustats" ~slots:16 ~iters:16
      @ [ alloc "A0" "dev" "kvm_device" ~func:"kvm_ioctl_create_device"
           ~line:2990;
         store "A1" (g "fd_table") (reg "dev")
           ~func:"kvm_ioctl_create_device" ~line:3003 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:7
      @ [ load "A1b" "kvm" (g "kvm_ptr") ~func:"kvm_ioctl_create_device"
            ~line:3009;
          load "A2" "u" (reg "kvm" **-> "users") ~func:"kvm_get_kvm"
            ~line:3010;
          store "A2b" (reg "kvm" **-> "users") (Add (reg "u", cint 1))
            ~func:"kvm_get_kvm" ~line:3010;
          return "A_ret" ~func:"kvm_ioctl_create_device" ~line:3015 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "kvm0" ] "B" "close"
      (Caselib.array_noise ~prefix:"B" ~buf:"kvm_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "dev" (g "fd_table") ~func:"__fput" ~line:210;
         branch_if "B1_chk" (Is_null (reg "dev")) "B_ret" ~func:"__fput"
           ~line:211;
         store "B2" (g "fd_table") cnull ~func:"__fput" ~line:212 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:7
      @ [ free "B2b" (reg "dev") ~func:"kvm_device_release" ~line:3050;
          load "B2c" "kvm" (g "kvm_ptr") ~func:"kvm_device_release" ~line:3051;
          ref_put "B3" ~ret:"r" (reg "kvm" **-> "users")
            ~func:"kvm_put_kvm" ~line:760;
          branch_if "B4" (Gt (reg "r", cint 0)) "B_ret" ~func:"kvm_put_kvm"
            ~line:761;
          free "B5" (reg "kvm") ~func:"kvm_destroy_vm" ~line:770;
          return "B_ret" ~func:"__fput" ~line:220 ])
  in
  Ksim.Program.group ~name:"cve-2019-6974"
    ~globals:
      ([ ("kvm_cpustats", Ksim.Value.Null); ("kvm_ptr", Ksim.Value.Null); ("fd_table", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2019-6974";
    subsystem = "KVM";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ]
        ~extra:[ ("X", "ioctl_kvm_run") ]
        ~symptom:"KASAN: use-after-free" ~location:"A2" ~subsystem:"KVM" () }

let bug : Bug.t =
  { id = "cve-2019-6974";
    source = Bug.Cve "CVE-2019-6974";
    subsystem = "KVM";
    bug_type = Bug.Use_after_free;
    variables = Bug.Multi_loose;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 103.8; p_lifs_scheds = 664; p_interleavings = 1;
          p_ca_time = 1183.8; p_ca_scheds = 688; p_chain_races = None };
    max_interleavings = None;
    description =
      "Device fd published before the kvm reference is taken; a \
       concurrent close drops the last reference and frees kvm (loosely \
       correlated VFS / KVM objects).";
    case }
