(* Extension case — unintended execution order of critical sections.

   §3.4's liveness rule says Causality Analysis must flip a lock-protected
   critical section as a unit, "because the execution order of critical
   sections may contribute to the failure"; the related-work section adds
   that plain race detectors "cannot inspect the unintended execution
   order of critical sections".  This case manifests exactly that bug:
   both racing accesses are correctly lock-protected — there is no data
   race in the KCSAN sense — yet running the consumer's critical section
   before the initializer's dereferences an unpublished pointer.

     A (ioctl init)                  B (read)
     A1  lock(dev)                   B1  lock(dev)
     A2  obj = kmalloc()             B2  o = dev_obj
     A3  dev_obj = obj               B3  unlock(dev)
     A4  unlock(dev)                 B4  o->state     <- NULL deref

   Chain: (B2 => A3) --> NULL deref, where the flip of B2 => A3 moves the
   whole B critical section after A's. *)

open Ksim.Program.Build

let counters = [ "dev_stat_opens" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "dev9" ] "A" "ioctl_init"
      (Caselib.noise ~prefix:"A" ~counters ~iters:5
      @ [ lock "A1" "dev_lock" ~func:"dev_init" ~line:200;
          alloc "A2" "obj" "dev_state" ~fields:[ ("state", cint 1) ]
            ~func:"dev_init" ~line:205;
          store "A3" (g "dev_obj") (reg "obj") ~func:"dev_init" ~line:210;
          unlock "A4" "dev_lock" ~func:"dev_init" ~line:215 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "dev9" ] "B" "read"
      (Caselib.noise ~prefix:"B" ~counters ~iters:5
      @ [ lock "B1" "dev_lock" ~func:"dev_read" ~line:300;
          load "B2" "o" (g "dev_obj") ~func:"dev_read" ~line:305;
          unlock "B3" "dev_lock" ~func:"dev_read" ~line:310;
          (* The missing NULL check: the author assumed init runs first. *)
          load "B4" "st" (reg "o" **-> "state") ~func:"dev_read" ~line:315 ])
  in
  Ksim.Program.group ~name:"ext-lock-order" ~locks:[ "dev_lock" ]
    ~globals:([ ("dev_obj", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "ext-lock-order";
    subsystem = "Char device";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "poll") ]
        ~symptom:"null-ptr-deref" ~location:"B4" ~subsystem:"Char device" () }

let bug : Bug.t =
  { id = "ext-lock";
    source = Bug.Extension "critical-section order (paper Sec. 3.4 liveness)";
    subsystem = "Char device";
    bug_type = Bug.Null_dereference;
    variables = Bug.Single;
    fixed_at_eval = false;
    expectation =
      { exp_interleavings = 0; exp_chain_races = Some 1;
        exp_ambiguous = false; exp_kthread = false };
    paper = None;
    max_interleavings = None;
    description =
      "Both accesses are lock-protected — no data race — but the \
       consumer's critical section may run before the initializer's; \
       Causality Analysis flips the whole critical section as a unit.";
    case }
