(* CVE-2019-11486 — TTY: Siemens R3964 line-discipline race.

   Changing the line discipline (TIOCSETD) tears down the r3964 private
   state while a concurrent receive path is still using it.  Modeled as
   the classic teardown-vs-use shape:

     A (ioctl TIOCSETD)            B (receive_buf)
     A1  info = ldisc_info         B1  info = ldisc_info
     A2  kfree(info)               B1c if (!info) return
     A3  ldisc_info = NULL         B2  info->msg ...   <- UAF

   Chain: (B1 => A3) --> (A2 => B2) --> use-after-free. *)

open Ksim.Program.Build

let counters = [ "tty_write_cnt"; "tty_irq_cnt" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "tty1" ] "init" "open"
      ([ alloc "I1" "info" "r3964_info" ~fields:[ ("msg", cint 3) ]
          ~func:"r3964_open" ~line:980;
        store "I2" (g "ldisc_info") (reg "info") ~func:"r3964_open" ~line:981 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"tty_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "tty1" ] "A" "ioctl_tiocsetd"
      (Caselib.array_noise ~prefix:"A" ~buf:"tty_cpustats" ~slots:16 ~iters:16
      @ [ load "A1" "info" (g "ldisc_info") ~func:"tty_set_ldisc" ~line:560;
         branch_if "A1_chk" (Is_null (reg "info")) "A_ret"
           ~func:"tty_set_ldisc" ~line:561 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:8
      @ [ free "A2" (reg "info") ~func:"r3964_close" ~line:1006;
          store "A3" (g "ldisc_info") cnull ~func:"r3964_close" ~line:1007;
          return "A_ret" ~func:"tty_set_ldisc" ~line:570 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "tty1" ] "B" "read"
      (Caselib.array_noise ~prefix:"B" ~buf:"tty_cpustats" ~slots:16 ~iters:16
      @ [ load "B1" "info" (g "ldisc_info") ~func:"r3964_receive_buf"
           ~line:1222;
         branch_if "B1_chk" (Is_null (reg "info")) "B_ret"
           ~func:"r3964_receive_buf" ~line:1223 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:8
      @ [ load "B2" "msg" (reg "info" **-> "msg") ~func:"r3964_receive_buf"
            ~line:1230;
          return "B_ret" ~func:"r3964_receive_buf" ~line:1240 ])
  in
  Ksim.Program.group ~name:"cve-2019-11486"
    ~globals:([ ("tty_cpustats", Ksim.Value.Null); ("ldisc_info", Ksim.Value.Null) ] @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "cve-2019-11486";
    subsystem = "TTY";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "write") ]
        ~symptom:"KASAN: use-after-free" ~location:"B2" ~subsystem:"TTY" () }

let bug : Bug.t =
  { id = "cve-2019-11486";
    source = Bug.Cve "CVE-2019-11486";
    subsystem = "TTY";
    bug_type = Bug.Use_after_free;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 2;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 44.7; p_lifs_scheds = 225; p_interleavings = 1;
          p_ca_time = 497.6; p_ca_scheds = 130; p_chain_races = None };
    max_interleavings = None;
    description =
      "Line-discipline teardown frees r3964 state under a concurrent \
       receive path.";
    case }
