(* Syzkaller bug #2 — "assertion violation in packet_lookup_frame"
   (Packet socket, single variable).

   The ring-frame status word is a little state machine ping-ponged
   between the transmit and receive paths; each side's control flow is
   steered by the value the other just wrote.  The failure needs a
   tightly alternating schedule (the deepest search in our corpus) and
   its causality chain strings several races on the single variable:

     A (tpacket_snd)                  B (tpacket_rcv)
     A1  status = SEND_REQUEST(1)     B1  if (status != 1) return
     A2  if (status != 2) return      B2  status = SENDING(2)
     A3  status = AVAILABLE(3)        B3  if (status != 3) return
     A4  BUG_ON(status == 4)          B4  status = USER(4)

   Chain: (A1 => B1) --> (B2 => A2) --> (A3 => B3) --> (B4 => A4). *)

open Ksim.Program.Build

let counters = [ "pkt_ring_frames" ]

let group =
  let thread_a =
    Caselib.syscall_thread ~resources:[ "ring2" ] "A" "sendmsg"
      ([ store "A1" (g "tp_status") (cint 1) ~func:"tpacket_snd" ~line:2700 ]
      @ Caselib.noise ~prefix:"A" ~counters ~iters:4
      @ [ load "A2" "s" (g "tp_status") ~func:"tpacket_snd" ~line:2710;
          branch_if "A2_chk" (Ne (reg "s", cint 2)) "A_ret"
            ~func:"tpacket_snd" ~line:2711;
          store "A3" (g "tp_status") (cint 3) ~func:"tpacket_snd" ~line:2715;
          load "A4_ld" "s2" (g "tp_status") ~func:"packet_lookup_frame"
            ~line:2720;
          bug_on "A4" (Eq (reg "s2", cint 4)) ~func:"packet_lookup_frame"
            ~line:2721;
          return "A_ret" ~func:"tpacket_snd" ~line:2730 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "ring2" ] "B" "recvmsg"
      ([ load "B1" "s" (g "tp_status") ~func:"tpacket_rcv" ~line:2200;
         branch_if "B1_chk" (Ne (reg "s", cint 1)) "B_ret" ~func:"tpacket_rcv"
           ~line:2201 ]
      @ Caselib.noise ~prefix:"B" ~counters ~iters:4
      @ [ store "B2" (g "tp_status") (cint 2) ~func:"tpacket_rcv" ~line:2210;
          load "B3" "s2" (g "tp_status") ~func:"tpacket_rcv" ~line:2215;
          branch_if "B3_chk" (Ne (reg "s2", cint 3)) "B_ret"
            ~func:"tpacket_rcv" ~line:2216;
          store "B4" (g "tp_status") (cint 4) ~func:"tpacket_rcv" ~line:2220;
          return "B_ret" ~func:"tpacket_rcv" ~line:2230 ])
  in
  Ksim.Program.group ~name:"syz-02-packet-assert"
    ~globals:([ ("tp_status", Ksim.Value.Int 0) ] @ Caselib.noise_globals counters)
    [ thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-02-packet-assert";
    subsystem = "Packet socket";
    group;
    history =
      Caselib.history ~group ~extra:[ ("X", "poll") ]
        ~symptom:"kernel BUG (BUG_ON)" ~location:"A4"
        ~subsystem:"Packet socket" () }

let bug : Bug.t =
  { id = "syz-02";
    source =
      Bug.Syzkaller
        { index = 2; title = "assertion violation in packet_lookup_frame" };
    subsystem = "Packet socket";
    bug_type = Bug.Assertion_violation;
    variables = Bug.Single;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 3; exp_chain_races = Some 4;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 318.0; p_lifs_scheds = 133; p_interleavings = 1;
          p_ca_time = 1152.0; p_ca_scheds = 471; p_chain_races = Some 4 };
    max_interleavings = Some 3;
    description =
      "Frame-status state machine ping-ponged between transmit and \
       receive; a tight alternation drives it to the asserting state.";
    case }
