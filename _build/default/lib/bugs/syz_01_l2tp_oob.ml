(* Syzkaller bug #1 — "KASAN: slab-out-of-bounds in pppol2tp_connect"
   (L2TP, multi-variable with loosely correlated objects).

   The connect path caches the tunnel's session index and uses it to
   index the session array, while a concurrent tunnel reconfiguration
   grows the index past the array bound.  The correlated state lives in
   two different objects: the pppox socket's `connecting` flag and the
   l2tp tunnel's `idx` — accessed together only on this path (loosely
   correlated, §2.2):

     A (pppol2tp_connect)            B (tunnel setsockopt)
     A1  connecting = 1              B1  if (connecting) return
     A2  i = tunnel->idx             B2  tunnel->idx = 6
     A4  sessions[i] = s             <- OOB when B2 => A2

   Chain: (B1 => A1)... i.e. (A1 => B1 flipped view) and (B2 => A2). *)

open Ksim.Program.Build

let counters = [ "l2tp_stat_pkts"; "l2tp_stat_conns"; "ppp_stat_units" ]

let group =
  let init =
    Caselib.syscall_thread ~resources:[ "tun1" ] "init" "socket"
      ([ alloc "I1" "t" "l2tp_tunnel" ~fields:[ ("idx", cint 2) ]
          ~func:"l2tp_tunnel_create" ~line:1500;
        store "I2" (g "tunnel_ptr") (reg "t") ~func:"l2tp_tunnel_create"
          ~line:1501;
        alloc "I3" "sess" "session_array" ~slots:4
          ~func:"l2tp_tunnel_create" ~line:1502;
        store "I4" (g "sessions_ptr") (reg "sess")
          ~func:"l2tp_tunnel_create" ~line:1503 ]
      @ Caselib.array_noise_setup ~prefix:"I" ~buf:"l2tp_cpustats" ~slots:16)
  in
  let thread_a =
    Caselib.syscall_thread ~resources:[ "tun1" ] "A" "connect"
      (Caselib.array_noise ~prefix:"A" ~buf:"l2tp_cpustats" ~slots:16 ~iters:16
      @ Caselib.noise ~prefix:"A" ~counters ~iters:10
      @ [ store "A1" (g "connecting") (cint 1) ~func:"pppol2tp_connect"
            ~line:720 ]
      @ Caselib.filler ~prefix:"A" 14
      @ [ load "A2_ld" "t" (g "tunnel_ptr") ~func:"pppol2tp_connect" ~line:721;
          load "A2" "i" (reg "t" **-> "idx") ~func:"pppol2tp_connect" ~line:722;
          load "A3" "sess" (g "sessions_ptr") ~func:"pppol2tp_connect"
            ~line:730;
          store "A4" (reg "sess" **@ reg "i") (cint 1)
            ~func:"pppol2tp_connect" ~line:731;
          store "A5" (g "connecting") (cint 0) ~func:"pppol2tp_connect"
            ~line:740 ])
  in
  let thread_b =
    Caselib.syscall_thread ~resources:[ "tun1" ] "B" "setsockopt"
      (Caselib.array_noise ~prefix:"B" ~buf:"l2tp_cpustats" ~slots:16 ~iters:16
      @ Caselib.noise ~prefix:"B" ~counters ~iters:10
      @ [ load "B1" "c" (g "connecting") ~func:"l2tp_tunnel_setsockopt"
            ~line:1620;
          branch_if "B1_chk" (Ne (reg "c", cint 0)) "B_ret"
            ~func:"l2tp_tunnel_setsockopt" ~line:1621 ]
      @ Caselib.filler ~prefix:"B" 14
      @ [ load "B2_ld" "t" (g "tunnel_ptr") ~func:"l2tp_tunnel_setsockopt"
            ~line:1630;
          store "B2" (reg "t" **-> "idx") (cint 6)
            ~func:"l2tp_tunnel_setsockopt" ~line:1631;
          (* The grown index is only valid once the array is reallocated:
             the (idx, sessions) pair is updated non-atomically. *)
          alloc "B3" "bigger" "session_array" ~slots:8
            ~func:"l2tp_tunnel_setsockopt" ~line:1632;
          store "B4" (g "sessions_ptr") (reg "bigger")
            ~func:"l2tp_tunnel_setsockopt" ~line:1633;
          return "B_ret" ~func:"l2tp_tunnel_setsockopt" ~line:1640 ])
  in
  Ksim.Program.group ~name:"syz-01-l2tp-oob"
    ~globals:
      ([ ("l2tp_cpustats", Ksim.Value.Null); ("connecting", Ksim.Value.Int 0); ("tunnel_ptr", Ksim.Value.Null);
         ("sessions_ptr", Ksim.Value.Null) ]
      @ Caselib.noise_globals counters)
    [ init; thread_a; thread_b ]

let case () : Aitia.Diagnose.case =
  { case_name = "syz-01-l2tp-oob";
    subsystem = "L2TP";
    group;
    history =
      Caselib.history ~group ~setup:[ "init" ] ~extra:[ ("X", "getsockname") ]
        ~symptom:"KASAN: slab-out-of-bounds" ~location:"A4"
        ~subsystem:"L2TP" () }

let bug : Bug.t =
  { id = "syz-01";
    source =
      Bug.Syzkaller
        { index = 1; title = "KASAN: slab-out-of-bounds in pppol2tp_connect" };
    subsystem = "L2TP";
    bug_type = Bug.Slab_out_of_bounds;
    variables = Bug.Multi_loose;
    fixed_at_eval = true;
    expectation =
      { exp_interleavings = 1; exp_chain_races = Some 3;
        exp_ambiguous = false; exp_kthread = false };
    paper =
      Some
        { p_lifs_time = 165.7; p_lifs_scheds = 751; p_interleavings = 1;
          p_ca_time = 251.3; p_ca_scheds = 236; p_chain_races = Some 2 };
    max_interleavings = None;
    description =
      "Tunnel reconfiguration grows the session index between connect's \
       read of tunnel->idx and the array store (loosely correlated \
       socket/tunnel objects).";
    case }
